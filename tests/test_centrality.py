"""Tests for ADS-based centralities and neighborhood functions."""

import statistics

import pytest

from repro.ads import build_ads_set
from repro.centrality import (
    HyperANF,
    all_closeness_centralities,
    closeness_centrality,
    graph_neighborhood_function,
    harmonic_centrality,
    top_k_central_nodes,
)
from repro.errors import EstimatorError, GraphError
from repro.graph import barabasi_albert_graph, gnp_random_graph, path_graph, star_graph
from repro.graph.properties import (
    closeness_centrality_exact,
    distance_distribution,
    exact_neighborhood_function,
    harmonic_centrality_exact,
)
from repro.rand.hashing import HashFamily


class TestCloseness:
    def test_sum_of_distances_unbiased(self):
        graph = barabasi_albert_graph(120, 3, seed=4)
        v = 11
        exact = closeness_centrality_exact(graph, v)
        estimates = []
        for seed in range(50):
            ads = build_ads_set(graph, 8, family=HashFamily(seed))[v]
            estimates.append(closeness_centrality(ads))
        assert statistics.mean(estimates) == pytest.approx(exact, rel=0.1)

    def test_harmonic_unbiased(self):
        graph = barabasi_albert_graph(120, 3, seed=4)
        v = 30
        exact = harmonic_centrality_exact(graph, v)
        estimates = []
        for seed in range(50):
            ads = build_ads_set(graph, 8, family=HashFamily(seed))[v]
            estimates.append(harmonic_centrality(ads))
        assert statistics.mean(estimates) == pytest.approx(exact, rel=0.1)

    def test_classic_closeness_on_star(self, family):
        graph = star_graph(50)
        ads_set = build_ads_set(graph, 16, family=family)
        center = closeness_centrality(ads_set[0], classic=True)
        leaf = closeness_centrality(ads_set[1], classic=True)
        assert center > leaf  # the hub is the most central node

    def test_classic_rejects_kernels(self, family):
        graph = star_graph(10)
        ads = build_ads_set(graph, 4, family=family)[0]
        with pytest.raises(EstimatorError):
            closeness_centrality(ads, alpha=lambda d: 1.0, classic=True)

    def test_beta_filter_queries_after_build(self):
        """The paper's flexibility claim: one ADS set, many beta queries."""
        graph = barabasi_albert_graph(100, 3, seed=7)
        v = 5
        ads = build_ads_set(graph, 16, family=HashFamily(3))[v]
        even = ads.centrality(
            alpha=lambda d: 1.0, beta=lambda u: 1.0 if u % 2 == 0 else 0.0
        )
        odd = ads.centrality(
            alpha=lambda d: 1.0, beta=lambda u: 1.0 if u % 2 == 1 else 0.0
        )
        everything = ads.centrality(alpha=lambda d: 1.0)
        assert even + odd == pytest.approx(everything)

    def test_top_k_ranking_identifies_hub(self, family):
        graph = star_graph(40)
        ads_set = build_ads_set(graph, 16, family=family)
        centralities = all_closeness_centralities(ads_set, classic=True)
        top = top_k_central_nodes(centralities, 1)
        assert top[0][0] == 0

    def test_top_k_least_central(self, family):
        graph = path_graph(20)
        ads_set = build_ads_set(graph, 16, family=family)
        centralities = all_closeness_centralities(ads_set, classic=True)
        bottom = top_k_central_nodes(centralities, 2, largest=False)
        assert {node for node, _ in bottom} <= {0, 1, 18, 19}


class TestGraphNeighborhoodFunction:
    def test_tracks_exact_distribution(self):
        graph = gnp_random_graph(150, 0.04, seed=6)
        estimates = []
        exact = dict(distance_distribution(graph))
        for seed in range(15):
            ads_set = build_ads_set(graph, 12, family=HashFamily(seed))
            estimated = dict(graph_neighborhood_function(ads_set))
            estimates.append(estimated)
        for d in list(exact)[:4]:
            mean = statistics.mean(e.get(d, 0.0) for e in estimates)
            assert mean == pytest.approx(exact[d], rel=0.12)


class TestHyperANF:
    def test_requires_unweighted(self, small_weighted, family):
        with pytest.raises(GraphError):
            HyperANF(small_weighted, 8, family)

    def test_converges_within_diameter_rounds(self, family):
        graph = path_graph(12)
        anf = HyperANF(graph, 8, family)
        rounds = anf.run()
        assert rounds <= 12
        assert not anf.advance()  # converged

    def test_estimates_track_neighborhood_function(self):
        graph = barabasi_albert_graph(150, 3, seed=3)
        v = 42
        exact = dict(exact_neighborhood_function(graph, v))
        hip_by_round = {}
        runs = 25
        totals = {}
        for seed in range(runs):
            anf = HyperANF(graph, 32, HashFamily(seed))
            for round_index in (1, 2):
                anf.advance()
                totals.setdefault(round_index, []).append(
                    anf.hip_estimates()[v]
                )
        for round_index, values in totals.items():
            truth = exact.get(float(round_index))
            if truth:
                assert statistics.mean(values) == pytest.approx(
                    truth, rel=0.15
                )

    def test_hip_at_least_as_good_as_basic(self):
        """Appendix B.1: HIP should (statistically) beat the HLL estimate
        from the same hyperANF computation."""
        graph = barabasi_albert_graph(200, 3, seed=8)
        runs = 30
        hip_err, basic_err = [], []
        truth = {
            v: dict(exact_neighborhood_function(graph, v)).get(2.0)
            for v in list(graph.nodes())[:20]
        }
        for seed in range(runs):
            anf = HyperANF(graph, 16, HashFamily(seed))
            anf.advance()
            anf.advance()
            hip = anf.hip_estimates()
            basic = anf.basic_estimates()
            for v, true in truth.items():
                if true:
                    hip_err.append((hip[v] / true - 1.0) ** 2)
                    basic_err.append((basic[v] / true - 1.0) ** 2)
        assert statistics.mean(hip_err) < statistics.mean(basic_err)

    def test_total_pairs_estimator_options(self, family):
        graph = path_graph(10)
        anf = HyperANF(graph, 8, family)
        anf.run()
        assert anf.total_pairs("hip") > 0
        assert anf.total_pairs("basic") > 0
        with pytest.raises(GraphError):
            anf.total_pairs("nope")
