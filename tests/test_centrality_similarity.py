"""Tests for node-similarity estimation from coordinated ADSs."""

import statistics

import pytest

from repro.ads import build_ads_set
from repro.centrality import (
    closeness_similarity,
    most_similar_nodes,
    neighborhood_jaccard,
)
from repro.errors import EstimatorError
from repro.graph import gnp_random_graph, grid_graph, path_graph
from repro.graph.traversal import bfs_distances
from repro.rand.hashing import HashFamily


class TestNeighborhoodJaccard:
    def test_self_similarity_is_one(self, family):
        graph = gnp_random_graph(80, 0.06, seed=1)
        ads_set = build_ads_set(graph, 8, family=family)
        assert neighborhood_jaccard(ads_set[0], ads_set[0], 2.0) == 1.0

    def test_far_apart_nodes_dissimilar(self, family):
        graph = path_graph(60)
        ads_set = build_ads_set(graph, 8, family=family)
        assert neighborhood_jaccard(ads_set[0], ads_set[59], 3.0) == 0.0

    def test_adjacent_nodes_similar(self, family):
        graph = grid_graph(8, 8)
        ads_set = build_ads_set(graph, 16, family=family)
        near = neighborhood_jaccard(ads_set[(3, 3)], ads_set[(3, 4)], 3.0)
        far = neighborhood_jaccard(ads_set[(0, 0)], ads_set[(7, 7)], 3.0)
        assert near > far

    def test_unbiased_over_seeds(self):
        graph = gnp_random_graph(120, 0.05, seed=7)
        u, v, d = 0, 1, 2.0
        nu = {x for x, dd in bfs_distances(graph, u).items() if dd <= d}
        nv = {x for x, dd in bfs_distances(graph, v).items() if dd <= d}
        true = len(nu & nv) / len(nu | nv)
        values = []
        for seed in range(120):
            ads_set = build_ads_set(graph, 12, family=HashFamily(seed))
            values.append(
                neighborhood_jaccard(ads_set[u], ads_set[v], d)
            )
        assert statistics.mean(values) == pytest.approx(true, abs=0.05)

    def test_requires_coordination(self, family):
        graph = path_graph(10)
        a = build_ads_set(graph, 4, family=family)[0]
        b = build_ads_set(graph, 4, family=HashFamily(family.seed + 1))[0]
        with pytest.raises(EstimatorError):
            neighborhood_jaccard(a, b, 2.0)

    def test_requires_same_k(self, family):
        graph = path_graph(10)
        a = build_ads_set(graph, 4, family=family)[0]
        b = build_ads_set(graph, 8, family=family)[5]
        with pytest.raises(EstimatorError):
            neighborhood_jaccard(a, b, 2.0)

    def test_requires_bottomk_flavor(self, family):
        graph = path_graph(10)
        a = build_ads_set(graph, 4, family=family, flavor="kmins")[0]
        b = build_ads_set(graph, 4, family=family, flavor="kmins")[5]
        with pytest.raises(EstimatorError):
            neighborhood_jaccard(a, b, 2.0)


class TestClosenessSimilarity:
    def test_self_similarity(self, family):
        graph = gnp_random_graph(60, 0.08, seed=3)
        ads_set = build_ads_set(graph, 8, family=family)
        assert closeness_similarity(ads_set[0], ads_set[0]) == pytest.approx(
            1.0
        )

    def test_bounded_and_symmetric(self, family):
        graph = grid_graph(6, 6)
        ads_set = build_ads_set(graph, 8, family=family)
        a, b = ads_set[(0, 0)], ads_set[(2, 3)]
        ab = closeness_similarity(a, b)
        ba = closeness_similarity(b, a)
        assert 0.0 <= ab <= 1.0
        assert ab == pytest.approx(ba)

    def test_custom_distances_and_weights(self, family):
        graph = grid_graph(5, 5)
        ads_set = build_ads_set(graph, 8, family=family)
        value = closeness_similarity(
            ads_set[(0, 0)],
            ads_set[(0, 1)],
            distances=[1.0, 2.0],
            weights=lambda d: 1.0 / d,
        )
        assert 0.0 <= value <= 1.0

    def test_negative_weight_rejected(self, family):
        graph = path_graph(6)
        ads_set = build_ads_set(graph, 4, family=family)
        with pytest.raises(EstimatorError):
            closeness_similarity(
                ads_set[0], ads_set[1], distances=[1.0],
                weights=lambda d: -1.0,
            )


class TestMostSimilarNodes:
    def test_neighbor_ranks_high_on_grid(self, family):
        graph = grid_graph(7, 7)
        ads_set = build_ads_set(graph, 16, family=family)
        top = most_similar_nodes(ads_set, (3, 3), d=3.0, count=8)
        top_nodes = {node for node, _ in top}
        adjacent = {(2, 3), (4, 3), (3, 2), (3, 4)}
        assert len(top_nodes & adjacent) >= 2

    def test_excludes_query_itself(self, family):
        graph = path_graph(12)
        ads_set = build_ads_set(graph, 4, family=family)
        top = most_similar_nodes(ads_set, 5, d=2.0, count=5)
        assert all(node != 5 for node, _ in top)

    def test_unknown_query(self, family):
        graph = path_graph(5)
        ads_set = build_ads_set(graph, 4, family=family)
        with pytest.raises(EstimatorError):
            most_similar_nodes(ads_set, 99, d=1.0)
