"""Tests for the command-line interface."""


import sys

import pytest

from repro.cli import build_parser, main
from repro.graph import gnp_random_graph, write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    graph = gnp_random_graph(50, 0.1, seed=3)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            ["sketch", "g.txt"],
            ["centrality", "g.txt"],
            ["neighborhood", "g.txt", "--node", "1"],
            ["build-index", "g.txt", "--out", "g.adsidx"],
            ["query", "g.adsidx"],
            ["serve", "--index", "g.adsidx"],
            ["serve", "--index", "g.adsidx", "--no-mmap", "--port", "0",
             "--cache-size", "64", "--threads", "2"],
            ["serve", "--index", "g.adsidx", "--no-mmap",
             "--graph", "g.txt"],
            ["serve", "--index", "g.adsidx", "--cluster", "0:500"],
            ["route", "--index", "g.adsidx",
             "--group", "http://127.0.0.1:8081",
             "--group", "http://127.0.0.1:8082,http://127.0.0.1:8083",
             "--rpc-timeout", "2.5", "--probe-interval", "0",
             "--writable"],
            ["update-index", "g.adsidx", "--graph", "g.txt",
             "--edges", "new.txt"],
            ["update-index", "g.adsidx", "--graph", "g.txt",
             "--edges", "new.txt", "--out", "h.adsidx", "--shards", "4",
             "--write-graph"],
            ["distinct-count"],
            ["figures", "fig2"],
        ):
            args = parser.parse_args(command)
            assert callable(args.func)

    def test_serve_mmap_flag_pair(self):
        parser = build_parser()
        assert parser.parse_args(["serve", "--index", "x"]).mmap is True
        assert parser.parse_args(
            ["serve", "--index", "x", "--no-mmap"]
        ).mmap is False


class TestSketch:
    def test_writes_one_line_per_node(self, graph_file, tmp_path, capsys):
        out = tmp_path / "sketches.txt"
        assert main(
            ["sketch", graph_file, "--k", "4", "--int-nodes",
             "--out", str(out)]
        ) == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 50
        node, entries = lines[0].split("\t")
        first = entries.split()[0]
        assert first.count(":") == 2  # node:distance:rank

    def test_stdout_default(self, graph_file, capsys):
        assert main(["sketch", graph_file, "--k", "2", "--int-nodes"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 50


class TestCentrality:
    @pytest.mark.parametrize("kind", ["classic", "harmonic", "decay", "distsum"])
    def test_kinds(self, graph_file, capsys, kind):
        assert main(
            ["centrality", graph_file, "--k", "8", "--int-nodes",
             "--kind", kind, "--top", "3"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            node, value = line.split("\t")
            float(value)


class TestNeighborhood:
    def test_distance_series(self, graph_file, capsys):
        assert main(
            ["neighborhood", graph_file, "--k", "8", "--int-nodes",
             "--node", "0"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        values = [float(line.split("\t")[1]) for line in lines]
        assert values == sorted(values)

    def test_unknown_node(self, graph_file, capsys):
        assert main(
            ["neighborhood", graph_file, "--k", "4", "--int-nodes",
             "--node", "9999"]
        ) == 1


class TestIndexWorkflow:
    @pytest.fixture
    def index_file(self, graph_file, tmp_path, capsys):
        path = tmp_path / "graph.adsidx"
        assert main(
            ["build-index", graph_file, "--k", "8", "--int-nodes",
             "--out", str(path)]
        ) == 0
        capsys.readouterr()
        return str(path)

    def test_build_index_writes_file(self, index_file, tmp_path):
        import os

        assert os.path.getsize(index_file) > 0

    def test_build_index_clean_errors(self, tmp_path, capsys):
        from repro.graph import random_geometric_graph, write_edge_list

        weighted = tmp_path / "weighted.txt"
        write_edge_list(random_geometric_graph(20, 0.3, seed=1), weighted)
        assert main(
            ["build-index", str(weighted), "--method", "dp", "--int-nodes",
             "--out", str(tmp_path / "w.adsidx")]
        ) == 1
        assert "unweighted" in capsys.readouterr().err
        assert main(
            ["build-index", str(weighted), "--int-nodes",
             "--out", str(tmp_path / "no-such-dir" / "w.adsidx")]
        ) == 1

    def test_query_top_central_matches_centrality_command(
        self, graph_file, index_file, capsys
    ):
        assert main(
            ["centrality", graph_file, "--k", "8", "--int-nodes",
             "--kind", "harmonic", "--top", "5"]
        ) == 0
        direct = capsys.readouterr().out
        assert main(
            ["query", index_file, "--kind", "harmonic", "--top", "5"]
        ) == 0
        via_index = capsys.readouterr().out
        assert via_index == direct

    def test_query_node_neighborhood(self, index_file, capsys):
        assert main(
            ["query", index_file, "--node", "0", "--int-nodes"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        values = [float(line.split("\t")[1]) for line in lines]
        assert values == sorted(values)

    def test_query_cardinality_all_nodes(self, index_file, capsys):
        assert main(["query", index_file, "--cardinality", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 50

    def test_query_graph_neighborhood(self, index_file, capsys):
        assert main(["query", index_file, "--neighborhood"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        values = [float(line.split("\t")[1]) for line in lines]
        assert values == sorted(values)

    def test_query_unknown_node(self, index_file, capsys):
        assert main(
            ["query", index_file, "--node", "9999", "--int-nodes"]
        ) == 1

    def test_query_single_node_centrality(
        self, graph_file, index_file, capsys
    ):
        assert main(
            ["query", index_file, "--node", "0", "--int-nodes",
             "--kind", "harmonic"]
        ) == 0
        node, value = capsys.readouterr().out.strip().split("\t")
        assert node == "0"
        assert main(
            ["centrality", graph_file, "--k", "8", "--int-nodes",
             "--kind", "harmonic", "--top", "50"]
        ) == 0
        table = dict(
            line.split("\t")
            for line in capsys.readouterr().out.strip().splitlines()
        )
        assert value == table["0"]

    def test_query_non_index_file(self, graph_file, capsys):
        assert main(["query", graph_file]) == 1
        assert "not an AdsIndex file" in capsys.readouterr().err

    def test_query_bad_int_node(self, index_file, capsys):
        assert main(
            ["query", index_file, "--node", "abc", "--int-nodes"]
        ) == 1

    def test_query_node_coerces_to_stored_label_type(
        self, index_file, capsys
    ):
        # index built with --int-nodes; --node works without the flag
        assert main(["query", index_file, "--node", "0"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("0\t")

    def test_query_node_coerces_string_labels_too(
        self, graph_file, tmp_path, capsys
    ):
        # index built WITHOUT --int-nodes (string labels); --int-nodes
        # queries still resolve
        path = tmp_path / "str.adsidx"
        assert main(
            ["build-index", graph_file, "--k", "4", "--out", str(path)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["query", str(path), "--node", "0", "--int-nodes"]
        ) == 0
        assert capsys.readouterr().out.strip()


class TestParallelAndShardedIndex:
    def test_workers_build_matches_serial(self, graph_file, tmp_path, capsys):
        serial, parallel = tmp_path / "s.adsidx", tmp_path / "p.adsidx"
        assert main(
            ["build-index", graph_file, "--k", "6", "--int-nodes",
             "--out", str(serial)]
        ) == 0
        assert main(
            ["build-index", graph_file, "--k", "6", "--int-nodes",
             "--workers", "2", "--out", str(parallel)]
        ) == 0
        assert "workers=2" in capsys.readouterr().err
        assert serial.read_bytes() == parallel.read_bytes()

    def test_sharded_layout_roundtrips_through_query(
        self, graph_file, tmp_path, capsys
    ):
        flat, sharded = tmp_path / "flat.adsidx", tmp_path / "sharded.adsidx"
        assert main(
            ["build-index", graph_file, "--k", "6", "--int-nodes",
             "--out", str(flat)]
        ) == 0
        assert main(
            ["build-index", graph_file, "--k", "6", "--int-nodes",
             "--shards", "3", "--out", str(sharded)]
        ) == 0
        assert sharded.is_dir() and (sharded / "manifest.json").is_file()
        capsys.readouterr()
        assert main(["query", str(flat), "--top", "5"]) == 0
        from_flat = capsys.readouterr().out
        assert main(["query", str(sharded), "--top", "5"]) == 0
        assert capsys.readouterr().out == from_flat


class TestErrorPaths:
    """build-index / query failure modes: non-zero exit, clear message,
    never a traceback."""

    def test_build_index_missing_input_file(self, tmp_path, capsys):
        assert main(
            ["build-index", str(tmp_path / "missing.txt"),
             "--out", str(tmp_path / "x.adsidx")]
        ) == 1
        assert "missing.txt" in capsys.readouterr().err

    def test_build_index_rejects_nonpositive_workers(
        self, graph_file, tmp_path, capsys
    ):
        for bad in ("0", "-3"):
            assert main(
                ["build-index", graph_file, "--workers", bad,
                 "--out", str(tmp_path / "x.adsidx")]
            ) == 2
            assert "--workers must be >= 1" in capsys.readouterr().err

    def test_build_index_rejects_nonpositive_shards(
        self, graph_file, tmp_path, capsys
    ):
        assert main(
            ["build-index", graph_file, "--shards", "0",
             "--out", str(tmp_path / "x.adsidx")]
        ) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_build_index_non_integer_workers_is_usage_error(
        self, graph_file, tmp_path
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["build-index", graph_file, "--workers", "many",
                 "--out", str(tmp_path / "x.adsidx")]
            )
        assert excinfo.value.code == 2

    def test_query_missing_index_file(self, tmp_path, capsys):
        assert main(["query", str(tmp_path / "missing.adsidx")]) == 1
        assert capsys.readouterr().err.strip()

    def test_query_label_absent_from_index(self, graph_file, tmp_path,
                                           capsys):
        path = tmp_path / "graph.adsidx"
        assert main(
            ["build-index", graph_file, "--k", "4", "--int-nodes",
             "--out", str(path)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["query", str(path), "--node", "777", "--int-nodes"]
        ) == 1
        assert "not in index" in capsys.readouterr().err

    def test_sketch_missing_input_file(self, tmp_path, capsys):
        # Commands without bespoke handlers still exit cleanly via the
        # main()-level guard.
        assert main(["sketch", str(tmp_path / "missing.txt")]) == 1
        assert "missing.txt" in capsys.readouterr().err

    def test_serve_missing_index(self, tmp_path, capsys):
        assert main(
            ["serve", "--index", str(tmp_path / "missing.adsidx")]
        ) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_serve_non_index_file(self, graph_file, capsys):
        assert main(["serve", "--index", graph_file, "--port", "0"]) == 1
        assert "not an AdsIndex file" in capsys.readouterr().err

    def test_serve_rejects_bad_parameters(self, tmp_path, capsys):
        target = tmp_path / "x.adsidx"
        target.write_bytes(b"")
        assert main(
            ["serve", "--index", str(target), "--threads", "0"]
        ) == 2
        assert "--threads" in capsys.readouterr().err
        assert main(
            ["serve", "--index", str(target), "--cache-size", "-1"]
        ) == 2
        assert "--cache-size" in capsys.readouterr().err

    def test_serve_rejects_malformed_cluster_range(self, tmp_path,
                                                   capsys):
        target = tmp_path / "x.adsidx"
        target.write_bytes(b"")
        for spec in ("5", ":10", "a:b"):
            assert main(
                ["serve", "--index", str(target), "--cluster", spec]
            ) == 2
            assert "--cluster" in capsys.readouterr().err

    def test_route_missing_index(self, tmp_path, capsys):
        assert main([
            "route", "--index", str(tmp_path / "missing.adsidx"),
            "--group", "http://127.0.0.1:1",
        ]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_route_rejects_bad_parameters(self, tmp_path, capsys):
        target = tmp_path / "x.adsidx"
        target.write_bytes(b"")
        base = ["route", "--index", str(target),
                "--group", "http://127.0.0.1:1"]
        assert main(base + ["--threads", "0"]) == 2
        assert "--threads" in capsys.readouterr().err
        assert main(base + ["--rpc-timeout", "0"]) == 2
        assert "--rpc-timeout" in capsys.readouterr().err
        assert main([
            "route", "--index", str(target), "--group", ",",
        ]) == 2
        assert "at least one URL" in capsys.readouterr().err
        # Pinning some groups' ranges but not others is ambiguous.
        assert main([
            "route", "--index", str(target),
            "--group", "0:5=http://127.0.0.1:1",
            "--group", "http://127.0.0.1:2",
        ]) == 2
        assert "all groups or none" in capsys.readouterr().err

    def test_route_group_spec_parsing(self):
        from repro.cli import _parse_group

        assert _parse_group("http://h:1,http://h:2") == (
            None, ["http://h:1", "http://h:2"]
        )
        assert _parse_group("0:500=http://h:1") == (
            (0, 500), ["http://h:1"]
        )
        assert _parse_group("500:=http://h:1,http://h:2") == (
            (500, None), ["http://h:1", "http://h:2"]
        )


class TestDistinctCount:
    def test_counts_distinct_lines(self, tmp_path, capsys):
        stream = tmp_path / "stream.txt"
        elements = [f"user-{i % 500}" for i in range(5000)]
        stream.write_text("\n".join(elements) + "\n")
        assert main(
            ["distinct-count", "--k", "64", "--input", str(stream)]
        ) == 0
        out = capsys.readouterr().out
        hip = float(out.splitlines()[0].split("\t")[1])
        assert hip == pytest.approx(500, rel=0.3)


class TestFigures:
    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        pytest.importorskip("numpy")

    def test_fig2_small(self, capsys):
        assert main(
            ["figures", "fig2", "--k", "5", "--runs", "10",
             "--max-n", "200"]
        ) == 0
        out = capsys.readouterr().out
        assert "bottomk_hip" in out

    def test_fig3_small(self, capsys):
        assert main(
            ["figures", "fig3", "--k", "16", "--runs", "10",
             "--max-n", "2000"]
        ) == 0
        out = capsys.readouterr().out
        assert "hll_raw" in out


class TestFiguresWithoutNumpy:
    def test_clean_error_when_harness_unimportable(
        self, monkeypatch, capsys
    ):
        monkeypatch.setitem(sys.modules, "repro.eval.fig2", None)
        assert main(["figures", "fig2"]) == 1
        assert "NumPy" in capsys.readouterr().err


class TestUpdateIndex:
    """The update-index subcommand: incremental apply from the shell."""

    def _build(self, tmp_path, graph_file, extra=()):
        index = str(tmp_path / "g.adsidx")
        assert main([
            "build-index", graph_file, "--int-nodes", "--k", "4",
            "--out", index, *extra,
        ]) == 0
        return index

    def test_applies_batch_in_place(self, graph_file, tmp_path, capsys):
        index = self._build(tmp_path, graph_file)
        batch = tmp_path / "batch.txt"
        batch.write_text("0 49\n1 50\n", encoding="utf-8")
        code = main([
            "update-index", index, "--graph", graph_file,
            "--edges", str(batch), "--write-graph",
        ])
        err = capsys.readouterr().err
        assert code == 0
        assert "applied" in err and "1 new nodes" in err
        assert main([
            "query", index, "--node", "50", "--cardinality", "1",
        ]) == 0
        assert capsys.readouterr().out.startswith("50\t2.00")
        # --write-graph pinned the node order: a second run loads a
        # matching graph and is a clean no-op.
        assert main([
            "update-index", index, "--graph", graph_file,
            "--edges", str(batch),
        ]) == 0
        assert "applied 0 arcs" in capsys.readouterr().err

    def test_sharded_layout_partial_rewrite(self, graph_file, tmp_path,
                                            capsys):
        layout = str(tmp_path / "layout")
        assert main([
            "build-index", graph_file, "--int-nodes", "--k", "4",
            "--out", layout, "--shards", "4",
        ]) == 0
        batch = tmp_path / "batch.txt"
        batch.write_text("0 7\n", encoding="utf-8")
        code = main([
            "update-index", layout, "--graph", graph_file,
            "--edges", str(batch),
        ])
        err = capsys.readouterr().err
        assert code == 0
        assert "sharded" in err

    def test_out_writes_elsewhere(self, graph_file, tmp_path, capsys):
        index = self._build(tmp_path, graph_file)
        batch = tmp_path / "batch.txt"
        batch.write_text("3 9\n", encoding="utf-8")
        out = str(tmp_path / "updated.adsidx")
        assert main([
            "update-index", index, "--graph", graph_file,
            "--edges", str(batch), "--out", out,
        ]) == 0
        capsys.readouterr()
        assert main(["query", out, "--top", "3"]) == 0

    def test_missing_index_fails_cleanly(self, graph_file, tmp_path,
                                         capsys):
        batch = tmp_path / "batch.txt"
        batch.write_text("0 1\n", encoding="utf-8")
        assert main([
            "update-index", str(tmp_path / "nope.adsidx"),
            "--graph", graph_file, "--edges", str(batch),
        ]) == 1
        assert capsys.readouterr().err

    def test_malformed_batch_fails_cleanly(self, graph_file, tmp_path,
                                           capsys):
        index = self._build(tmp_path, graph_file)
        batch = tmp_path / "batch.txt"
        batch.write_text("0 1 2 3\n", encoding="utf-8")
        assert main([
            "update-index", index, "--graph", graph_file,
            "--edges", str(batch),
        ]) == 1
        assert "malformed" in capsys.readouterr().err

    def test_serve_graph_requires_no_mmap(self, graph_file, tmp_path,
                                          capsys):
        index = self._build(tmp_path, graph_file)
        assert main([
            "serve", "--index", index, "--graph", graph_file,
        ]) == 2
        assert "--no-mmap" in capsys.readouterr().err

    def test_inplace_updates_stay_rebuild_exact_by_default(
        self, tmp_path, capsys
    ):
        """Two successive in-place updates (no --write-graph flag) must
        keep matching a rebuild: the graph file follows the index by
        default, so the second propagation sees the first batch."""
        graph_file = str(tmp_path / "chain.txt")
        with open(graph_file, "w") as fh:
            fh.write("".join(f"{i} {i+1}\n" for i in range(9)))
        index = str(tmp_path / "chain.adsidx")
        assert main([
            "build-index", graph_file, "--int-nodes", "--k", "16",
            "--out", index,
        ]) == 0
        for edge in ("5 9", "0 5"):
            batch = tmp_path / "batch.txt"
            batch.write_text(edge + "\n", encoding="utf-8")
            assert main([
                "update-index", index, "--graph", graph_file,
                "--edges", str(batch),
            ]) == 0
        rebuilt = str(tmp_path / "rebuilt.adsidx")
        assert main([
            "build-index", graph_file, "--int-nodes", "--k", "16",
            "--out", rebuilt,
        ]) == 0
        capsys.readouterr()
        assert main(["query", index, "--cardinality", "2"]) == 0
        incremental = capsys.readouterr().out
        assert main(["query", rebuilt, "--cardinality", "2"]) == 0
        assert incremental == capsys.readouterr().out
