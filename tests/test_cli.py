"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.graph import gnp_random_graph, write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    graph = gnp_random_graph(50, 0.1, seed=3)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            ["sketch", "g.txt"],
            ["centrality", "g.txt"],
            ["neighborhood", "g.txt", "--node", "1"],
            ["distinct-count"],
            ["figures", "fig2"],
        ):
            args = parser.parse_args(command)
            assert callable(args.func)


class TestSketch:
    def test_writes_one_line_per_node(self, graph_file, tmp_path, capsys):
        out = tmp_path / "sketches.txt"
        assert main(
            ["sketch", graph_file, "--k", "4", "--int-nodes",
             "--out", str(out)]
        ) == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 50
        node, entries = lines[0].split("\t")
        first = entries.split()[0]
        assert first.count(":") == 2  # node:distance:rank

    def test_stdout_default(self, graph_file, capsys):
        assert main(["sketch", graph_file, "--k", "2", "--int-nodes"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 50


class TestCentrality:
    @pytest.mark.parametrize("kind", ["classic", "harmonic", "decay", "distsum"])
    def test_kinds(self, graph_file, capsys, kind):
        assert main(
            ["centrality", graph_file, "--k", "8", "--int-nodes",
             "--kind", kind, "--top", "3"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            node, value = line.split("\t")
            float(value)


class TestNeighborhood:
    def test_distance_series(self, graph_file, capsys):
        assert main(
            ["neighborhood", graph_file, "--k", "8", "--int-nodes",
             "--node", "0"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        values = [float(line.split("\t")[1]) for line in lines]
        assert values == sorted(values)

    def test_unknown_node(self, graph_file, capsys):
        assert main(
            ["neighborhood", graph_file, "--k", "4", "--int-nodes",
             "--node", "9999"]
        ) == 1


class TestDistinctCount:
    def test_counts_distinct_lines(self, tmp_path, capsys):
        stream = tmp_path / "stream.txt"
        elements = [f"user-{i % 500}" for i in range(5000)]
        stream.write_text("\n".join(elements) + "\n")
        assert main(
            ["distinct-count", "--k", "64", "--input", str(stream)]
        ) == 0
        out = capsys.readouterr().out
        hip = float(out.splitlines()[0].split("\t")[1])
        assert hip == pytest.approx(500, rel=0.3)


class TestFigures:
    def test_fig2_small(self, capsys):
        assert main(
            ["figures", "fig2", "--k", "5", "--runs", "10",
             "--max-n", "200"]
        ) == 0
        out = capsys.readouterr().out
        assert "bottomk_hip" in out

    def test_fig3_small(self, capsys):
        assert main(
            ["figures", "fig3", "--k", "16", "--runs", "10",
             "--max-n", "2000"]
        ) == 0
        out = capsys.readouterr().out
        assert "hll_raw" in out
