"""Cluster router correctness: exact merges, routing, topology.

The load-bearing claim of the cluster tier is **bit-identity**: a
query against a sharded cluster returns the same answer -- the same
IEEE-754 doubles, the same row order, the same serialized bytes -- as
the same query against one server over the whole index.  Property
tests drive the merge functions over random shard splits (the merge
must be exact for *every* tiling, not just the balanced one the CLI
produces), and a raw-socket test pins the end-to-end bytes on both
wire encodings.  Every ADS flavor is covered: merge exactness must
not depend on which sketch family produced the estimates.
"""

import http.client
import json

import pytest
from hypothesis import given, settings, strategies as st

from cluster_harness import start_cluster
from repro.ads import AdsIndex
from repro.centrality.closeness import top_k_central_nodes
from repro.errors import ReproError
from repro.graph import barabasi_albert_graph
from repro.serve import AdsServer, QueryClient, RouterServer
from repro.serve.cluster import LabelDirectory, merge_top_central
from repro.serve.schemas import centrality_kwargs


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(60, 3, seed=7).to_csr()


@pytest.fixture(
    scope="module", params=["bottomk", "kmins", "kpartition"]
)
def flavored_index(graph, request):
    return AdsIndex.build(graph, 8, flavor=request.param)


def _split_points(n, cuts):
    """Cut positions -> contiguous ``(start, stop)`` ranges over n."""
    bounds = sorted(set(cut % (n - 1) + 1 for cut in cuts)) if cuts \
        else []
    edges = [0] + bounds + [n]
    return list(zip(edges, edges[1:]))


class TestTopCentralMergeProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        cuts=st.lists(st.integers(0, 10_000), max_size=5),
        count=st.integers(1, 70),
        largest=st.booleans(),
        kind=st.sampled_from(["classic", "harmonic", "distsum"]),
    )
    def test_merge_equals_single_index(
        self, flavored_index, cuts, count, largest, kind
    ):
        # Simulate each shard's /top-central: rank its own range with
        # the worker's exact code path, then merge.  The result must
        # equal the single-index ranking *including order* -- the
        # documented tie-break (value, then label repr) survives the
        # k-way merge for every random tiling.
        index = flavored_index
        kwargs = centrality_kwargs({"kind": kind})
        labels = index.nodes()
        group_rows = []
        for start, stop in _split_points(index.num_nodes, cuts):
            values = {
                label: index.node_closeness_centrality(label, **kwargs)
                for label in labels[start:stop]
            }
            group_rows.append([
                [label, value]
                for label, value in top_k_central_nodes(
                    values, count, largest=largest
                )
            ])
        merged = merge_top_central(group_rows, count, largest=largest)
        expected = [
            [label, value]
            for label, value in index.top_central(
                count, largest=largest, **kwargs
            )
        ]
        assert merged == expected

    def test_ties_keep_documented_order(self):
        # Pure-function check with manufactured ties: equal values
        # order by label repr, ascending for largest=True.
        rows = [[["b", 1.0], ["a", 1.0]], [["c", 1.0], ["d", 0.5]]]
        assert merge_top_central(rows, 3) == [
            ["a", 1.0], ["b", 1.0], ["c", 1.0]
        ]
        assert merge_top_central(rows, 3, largest=False) == [
            ["d", 0.5], ["a", 1.0], ["b", 1.0]
        ]


class TestNeighborhoodChainProperty:
    @settings(max_examples=30, deadline=None)
    @given(cuts=st.lists(st.integers(0, 10_000), max_size=5))
    def test_chained_accumulation_equals_single_sweep(
        self, flavored_index, cuts
    ):
        # The router's /nf-chain protocol: fold each range's jumps on
        # top of the previous ranges' sums, in shard order, then
        # prefix-sum once.  Must replay the single-index float-op
        # sequence exactly for every split.
        index = flavored_index
        jumps = {}
        for start, stop in _split_points(index.num_nodes, cuts):
            index.accumulate_neighborhood_jumps(jumps, start, stop)
        series, running = [], 0.0
        for d in sorted(jumps):
            running += jumps[d]
            series.append((d, running))
        assert series == index.neighborhood_function()


class TestEndToEndByteIdentity:
    def _raw(self, server, path, accept):
        conn = http.client.HTTPConnection(
            server.host, server.port, timeout=10
        )
        conn.request("GET", path, headers={"Accept": accept})
        response = conn.getresponse()
        payload = (response.status, response.read())
        conn.close()
        return payload

    def test_cluster_bytes_equal_single_server_bytes(
        self, flavored_index
    ):
        # The strongest form of the identity: not "equal floats" but
        # the same bytes on the wire, JSON and binary, for all four
        # query endpoints (first hits, so cache flags agree too).
        index = flavored_index
        with AdsServer(index, cache_size=4) as single:
            with start_cluster(
                index, workers=3, cache_size=4
            ) as cluster:
                for path in (
                    "/cardinality",
                    "/closeness?kind=harmonic",
                    "/neighborhood",
                    "/top-central?count=15",
                    "/node/7",
                ):
                    for accept in (
                        "application/json",
                        "application/x-repro-wire",
                    ):
                        assert self._raw(single, path, accept) == \
                            self._raw(cluster, path, accept), path


class TestSingleNodeRouting:
    def test_every_node_routes_to_its_owner(self, flavored_index):
        # Per-node answers must come from the owning shard regardless
        # of where the label falls; probing every node crosses all
        # three boundaries.
        index = flavored_index
        with start_cluster(index, workers=3, cache_size=0) as cluster:
            with cluster.client() as client:
                for label in index.nodes():
                    assert client.cardinality(node=label, d=2.0)[
                        "value"
                    ] == index.node_cardinality_at(label, 2.0)


class TestLabelDirectory:
    def test_contains_and_ids(self):
        directory = LabelDirectory(["a", "b", "c"])
        assert "b" in directory and "z" not in directory
        assert directory.id_of("c") == 2
        assert len(directory) == 3

    def test_append_interns_once(self):
        directory = LabelDirectory([0, 1])
        assert directory.append(2) is True
        assert directory.append(2) is False
        assert directory.id_of(2) == 2

    def test_label_type_uniformity(self):
        assert LabelDirectory([1, 2]).label_type() is int
        assert LabelDirectory(["a", "b"]).label_type() is str
        assert LabelDirectory([1, "a"]).label_type() is None
        # bools are not int labels
        assert LabelDirectory([True, 2]).label_type() is None

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ReproError):
            LabelDirectory([0, 1, 0])


class TestTopologyValidation:
    def test_non_contiguous_groups_rejected(self):
        with pytest.raises(ReproError, match="contiguous"):
            RouterServer(
                list(range(10)),
                [((0, 4), ["http://x:1"]), ((5, None), ["http://x:2"])],
            )

    def test_gap_at_zero_rejected(self):
        with pytest.raises(ReproError, match="starts at 1"):
            RouterServer(list(range(10)), [((1, None), ["http://x:1"])])

    def test_last_group_must_cover_the_tail(self):
        with pytest.raises(ReproError, match="must end at 10"):
            RouterServer(
                list(range(10)),
                [((0, 5), ["http://x:1"]), ((5, 8), ["http://x:2"])],
            )

    def test_closed_last_group_normalises_to_open(self, flavored_index):
        index = flavored_index
        n = index.num_nodes
        with AdsServer(index, node_range=(0, None)) as worker:
            router = RouterServer(
                index.nodes(), [((0, n), [worker.url])]
            )
            try:
                last = router._membership.groups[-1]
                assert last.stop is None  # owns future appended nodes
            finally:
                router.close()

    def test_stats_reports_topology(self, flavored_index):
        index = flavored_index
        with start_cluster(
            index, workers=2, replicas=2, cache_size=0
        ) as cluster:
            with cluster.client() as client:
                stats = client.stats()
            topology = stats["cluster"]
            assert [g["range"] for g in topology["groups"]] == [
                "[0, 30)", f"[30, {index.num_nodes})"
            ]
            assert all(
                len(g["replicas"]) == 2 for g in topology["groups"]
            )
            assert topology["rpc"]["wire"] == "binary"
            assert stats["index"]["nodes"] == index.num_nodes
            assert "node_range" not in stats["index"]
