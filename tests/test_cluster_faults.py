"""Fault injection against the cluster router.

The contract under test (ISSUE 8): when replicas fail, the router
**degrades or sheds, never lies and never hangs** --

* a replica lost mid-batch fails over to a survivor and the response
  stays bit-identical to the single-index answer;
* losing every replica of a shard is a *structured* 503 naming the
  unavailable node range, returned promptly (bounded by connect
  failure or ``rpc_timeout``, not a hang);
* a hung worker costs at most ``rpc_timeout``;
* a truncated wire frame -- a well-formed HTTP 200 carrying a torn
  binary payload -- is detected at decode, treated as an outage, and
  failed over exactly like a crash;
* health probes bring recovered replicas back (``down -> up``), but
  never revive a replica that missed a committed update batch
  (``stale`` is terminal quarantine);
* writes refuse up front (503) unless every non-stale replica is
  reachable, so a partial apply can't silently fork the cluster.

Faults are injected through :class:`cluster_harness.FaultProxy`, an
HTTP-aware relay, so each test controls exactly which RPC fails and
how.
"""

import time

import pytest

from cluster_harness import start_cluster
from repro.ads import AdsIndex
from repro.graph import barabasi_albert_graph
from repro.graph.csr import CSRGraph
from repro.serve import QueryClient, ServeClientError
from repro.serve.membership import STATE_DOWN, STATE_STALE, STATE_UP


@pytest.fixture(scope="module")
def index():
    graph = barabasi_albert_graph(90, 3, seed=11).to_csr()
    return AdsIndex.build(graph, 8)


def _replica(cluster, group, position):
    return cluster.router._membership.groups[group].replicas[position]


class TestReplicaFailover:
    def test_killed_replica_fails_over_bit_identically(self, index):
        # Two replicas per shard; kill group 0's first replica, then
        # force the router to try it first.  The fan-out must land on
        # the survivor and the merged sweep must still equal the
        # single-index floats exactly.
        with start_cluster(
            index, workers=2, replicas=2, proxy=True, cache_size=0,
            rpc_timeout=5.0,
        ) as cluster:
            cluster.proxies[0].kill()
            cluster.router.reset_round_robin()
            with cluster.client() as client:
                response = client.cardinality(d=2.0)
            assert dict(
                (label, value) for label, value in response["results"]
            ) == index.cardinality_at(2.0)
            assert _replica(cluster, 0, 0).state == STATE_DOWN
            with cluster.client() as client:
                stats = client.stats()
            assert stats["cluster"]["rpc"]["failovers"] >= 1

    def test_connection_dropped_mid_request_fails_over(self, index):
        # kill_next closes the socket while the RPC is in flight --
        # the router sees a torn connection, not a refused connect.
        with start_cluster(
            index, workers=2, replicas=2, proxy=True, cache_size=0,
            rpc_timeout=5.0,
        ) as cluster:
            cluster.proxies[0].mode = "kill_next"
            cluster.router.reset_round_robin()
            with cluster.client() as client:
                response = client.closeness(kind="classic")
            assert dict(
                (label, value) for label, value in response["results"]
            ) == index.closeness_centrality(classic=True)

    def test_truncated_wire_frame_is_failover_not_garbage(self, index):
        # The proxy answers 200 OK with the body cut to 10 bytes and a
        # matching Content-Length: HTTP framing is valid, the binary
        # payload is torn.  The router must detect it at decode, mark
        # the replica down, and serve the survivor's exact answer.
        with start_cluster(
            index, workers=2, replicas=2, proxy=True, cache_size=0,
            rpc_timeout=5.0,
        ) as cluster:
            cluster.proxies[0].mode = "truncate:10"
            cluster.router.reset_round_robin()
            with cluster.client() as client:
                response = client.cardinality(d=3.0)
            assert dict(
                (label, value) for label, value in response["results"]
            ) == index.cardinality_at(3.0)
            assert _replica(cluster, 0, 0).state == STATE_DOWN

    def test_hung_worker_costs_at_most_rpc_timeout(self, index):
        # blackhole reads the request and never answers.  Only the
        # router's rpc_timeout bounds the stall; the survivor then
        # answers and the client never sees the fault.
        with start_cluster(
            index, workers=2, replicas=2, proxy=True, cache_size=0,
            rpc_timeout=1.0,
        ) as cluster:
            cluster.proxies[0].mode = "blackhole"
            cluster.router.reset_round_robin()
            started = time.monotonic()
            with cluster.client() as client:
                response = client.cardinality(d=2.0)
            elapsed = time.monotonic() - started
            assert dict(
                (label, value) for label, value in response["results"]
            ) == index.cardinality_at(2.0)
            assert elapsed < 5.0
            assert _replica(cluster, 0, 0).state == STATE_DOWN


class TestShardOutage:
    def test_only_owner_killed_is_structured_503_not_hang(self, index):
        # One replica per shard: killing group 0's worker makes nodes
        # [0, 45) unservable.  The router must shed with a 503 that
        # names the range -- promptly, and without poisoning queries
        # that only touch the surviving shard.
        with start_cluster(
            index, workers=2, replicas=1, proxy=True, cache_size=0,
            rpc_timeout=2.0,
        ) as cluster:
            cluster.proxies[0].kill()
            started = time.monotonic()
            with cluster.client() as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.cardinality(d=2.0)
                assert excinfo.value.status == 503
                assert "shard [0, 45) unavailable" in str(excinfo.value)
                assert time.monotonic() - started < 10.0
                # The surviving shard still answers single-node hits.
                assert client.cardinality(node=80, d=2.0)[
                    "value"
                ] == index.node_cardinality_at(80, 2.0)

    def test_sweep_never_returns_a_partial_merge(self, index):
        # A dead shard mid-fan-out must never yield a "sweep" missing
        # 45 nodes: it's the full merge or a 503.
        with start_cluster(
            index, workers=3, replicas=1, proxy=True, cache_size=0,
            rpc_timeout=2.0,
        ) as cluster:
            cluster.proxies[1].kill()
            with cluster.client() as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.closeness()
                assert excinfo.value.status == 503
                with pytest.raises(ServeClientError):
                    client.neighborhood()
                with pytest.raises(ServeClientError):
                    client.top_central(count=5)


class TestRecovery:
    def test_probe_marks_recovered_replica_back_up(self, index):
        with start_cluster(
            index, workers=1, replicas=2, proxy=True, cache_size=0,
            rpc_timeout=1.0,
        ) as cluster:
            cluster.proxies[0].mode = "refuse"
            cluster.router.reset_round_robin()
            with cluster.client() as client:
                client.cardinality(d=2.0)  # trips the mark-down
            assert _replica(cluster, 0, 0).state == STATE_DOWN
            cluster.proxies[0].mode = "pass"
            cluster.router._membership.probe_all()
            assert _replica(cluster, 0, 0).state == STATE_UP

    def test_down_replica_serves_as_last_resort(self, index):
        # Both replicas marked down (e.g. a probe blip): the router
        # must still *try* them rather than shed -- a down mark is a
        # hint, not a verdict.
        with start_cluster(
            index, workers=1, replicas=2, proxy=True, cache_size=0,
        ) as cluster:
            _replica(cluster, 0, 0).mark_down("probe blip")
            _replica(cluster, 0, 1).mark_down("probe blip")
            with cluster.client() as client:
                response = client.cardinality(d=2.0)
            assert dict(
                (label, value) for label, value in response["results"]
            ) == index.cardinality_at(2.0)
            # Answering marked it back up (passive recovery).
            states = {
                _replica(cluster, 0, p).state for p in (0, 1)
            }
            assert STATE_UP in states


def _chain_graph(n):
    return CSRGraph.from_edges(
        [(i, i + 1) for i in range(n - 1)], nodes=range(n)
    )


class TestWriteFaults:
    def test_update_refuses_without_full_membership(self, tmp_path):
        graph = _chain_graph(24)
        index = AdsIndex.build(graph, 4)
        with start_cluster(
            index, workers=2, replicas=1, graph=graph,
            tmp_path=tmp_path, proxy=True, cache_size=0,
            rpc_timeout=2.0,
        ) as cluster:
            cluster.proxies[1].mode = "refuse"
            with cluster.client() as client:
                # A read against the broken shard marks it down...
                with pytest.raises(ServeClientError):
                    client.cardinality(node=20, d=1.0)
                # ...and the write then refuses up front: nothing was
                # applied anywhere, the cluster state is untouched.
                with pytest.raises(ServeClientError) as excinfo:
                    client.update([[0, 23]])
                assert excinfo.value.status == 503
                assert "full membership" in str(excinfo.value)
                assert "[12, 24)" in str(excinfo.value)
                # Heal the shard: the same batch applies cleanly.
                cluster.proxies[1].mode = "pass"
                cluster.router._membership.probe_all()
                result = client.update([[0, 23]])
                assert result["applied_arcs"] == 2

    def test_replica_missing_a_batch_is_quarantined_stale(
        self, tmp_path
    ):
        graph = _chain_graph(24)
        index = AdsIndex.build(graph, 4)
        with start_cluster(
            index, workers=1, replicas=2, graph=graph,
            tmp_path=tmp_path, proxy=True, cache_size=0,
            rpc_timeout=2.0,
        ) as cluster:
            with cluster.client() as client:
                client.update([[0, 23]])
                # Replica 1 dies between the precheck and its apply:
                # its peers commit the batch, it doesn't.
                cluster.proxies[1].mode = "refuse"
                client.update([[0, 12]])
            assert _replica(cluster, 0, 1).state == STATE_STALE
            # Recovery does NOT revive it: its index content diverged.
            cluster.proxies[1].mode = "pass"
            cluster.router._membership.probe_all()
            assert _replica(cluster, 0, 1).state == STATE_STALE
            # Reads keep flowing from the converged replica, and its
            # answers reflect both batches.
            with cluster.client() as client:
                value = client.cardinality(node=0, d=1.0)["value"]
            assert value == cluster.index.node_cardinality_at(0, 1.0)
            snapshot = cluster.router._membership.snapshot(24)
            states = [
                replica["state"]
                for replica in snapshot[0]["replicas"]
            ]
            assert states.count(STATE_STALE) == 1

    def test_read_only_cluster_refuses_writes_with_409(self, index):
        with start_cluster(index, workers=2) as cluster:
            with cluster.client() as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.update([[0, 1]])
                assert excinfo.value.status == 409
