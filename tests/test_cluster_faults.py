"""Fault injection against the cluster router.

The contract under test (ISSUE 8): when replicas fail, the router
**degrades or sheds, never lies and never hangs** --

* a replica lost mid-batch fails over to a survivor and the response
  stays bit-identical to the single-index answer;
* losing every replica of a shard is a *structured* 503 naming the
  unavailable node range, returned promptly (bounded by connect
  failure or ``rpc_timeout``, not a hang);
* a hung worker costs at most ``rpc_timeout``;
* a truncated wire frame -- a well-formed HTTP 200 carrying a torn
  binary payload -- is detected at decode, treated as an outage, and
  failed over exactly like a crash;
* health probes bring recovered replicas back (``down -> up``), but
  never revive a replica that missed a committed update batch
  (``stale`` is terminal quarantine);
* writes refuse up front (503) unless every non-stale replica is
  reachable, so a partial apply can't silently fork the cluster.

Faults are injected through :class:`cluster_harness.FaultProxy`, an
HTTP-aware relay, so each test controls exactly which RPC fails and
how.
"""

import time

import pytest

from cluster_harness import start_cluster
from repro.ads import AdsIndex
from repro.graph import barabasi_albert_graph, path_graph
from repro.graph.csr import CSRGraph
from repro.serve import (
    AdsServer,
    ClusterTopologyError,
    QueryClient,
    RouterServer,
    ServeClientError,
)
from repro.serve.membership import STATE_DOWN, STATE_STALE, STATE_UP


@pytest.fixture(scope="module")
def index():
    graph = barabasi_albert_graph(90, 3, seed=11).to_csr()
    return AdsIndex.build(graph, 8)


def _replica(cluster, group, position):
    return cluster.router._membership.groups[group].replicas[position]


class TestReplicaFailover:
    def test_killed_replica_fails_over_bit_identically(self, index):
        # Two replicas per shard; kill group 0's first replica, then
        # force the router to try it first.  The fan-out must land on
        # the survivor and the merged sweep must still equal the
        # single-index floats exactly.
        with start_cluster(
            index, workers=2, replicas=2, proxy=True, cache_size=0,
            rpc_timeout=5.0,
        ) as cluster:
            cluster.proxies[0].kill()
            cluster.router.reset_round_robin()
            with cluster.client() as client:
                response = client.cardinality(d=2.0)
            assert dict(
                (label, value) for label, value in response["results"]
            ) == index.cardinality_at(2.0)
            assert _replica(cluster, 0, 0).state == STATE_DOWN
            with cluster.client() as client:
                stats = client.stats()
            assert stats["cluster"]["rpc"]["failovers"] >= 1

    def test_connection_dropped_mid_request_fails_over(self, index):
        # kill_next closes the socket while the RPC is in flight --
        # the router sees a torn connection, not a refused connect.
        with start_cluster(
            index, workers=2, replicas=2, proxy=True, cache_size=0,
            rpc_timeout=5.0,
        ) as cluster:
            cluster.proxies[0].mode = "kill_next"
            cluster.router.reset_round_robin()
            with cluster.client() as client:
                response = client.closeness(kind="classic")
            assert dict(
                (label, value) for label, value in response["results"]
            ) == index.closeness_centrality(classic=True)

    def test_truncated_wire_frame_is_failover_not_garbage(self, index):
        # The proxy answers 200 OK with the body cut to 10 bytes and a
        # matching Content-Length: HTTP framing is valid, the binary
        # payload is torn.  The router must detect it at decode, mark
        # the replica down, and serve the survivor's exact answer.
        with start_cluster(
            index, workers=2, replicas=2, proxy=True, cache_size=0,
            rpc_timeout=5.0,
        ) as cluster:
            cluster.proxies[0].mode = "truncate:10"
            cluster.router.reset_round_robin()
            with cluster.client() as client:
                response = client.cardinality(d=3.0)
            assert dict(
                (label, value) for label, value in response["results"]
            ) == index.cardinality_at(3.0)
            assert _replica(cluster, 0, 0).state == STATE_DOWN

    def test_hung_worker_costs_at_most_rpc_timeout(self, index):
        # blackhole reads the request and never answers.  Only the
        # router's rpc_timeout bounds the stall; the survivor then
        # answers and the client never sees the fault.
        with start_cluster(
            index, workers=2, replicas=2, proxy=True, cache_size=0,
            rpc_timeout=1.0,
        ) as cluster:
            cluster.proxies[0].mode = "blackhole"
            cluster.router.reset_round_robin()
            started = time.monotonic()
            with cluster.client() as client:
                response = client.cardinality(d=2.0)
            elapsed = time.monotonic() - started
            assert dict(
                (label, value) for label, value in response["results"]
            ) == index.cardinality_at(2.0)
            assert elapsed < 5.0
            assert _replica(cluster, 0, 0).state == STATE_DOWN


class TestShardOutage:
    def test_only_owner_killed_is_structured_503_not_hang(self, index):
        # One replica per shard: killing group 0's worker makes nodes
        # [0, 45) unservable.  The router must shed with a 503 that
        # names the range -- promptly, and without poisoning queries
        # that only touch the surviving shard.
        with start_cluster(
            index, workers=2, replicas=1, proxy=True, cache_size=0,
            rpc_timeout=2.0,
        ) as cluster:
            cluster.proxies[0].kill()
            started = time.monotonic()
            with cluster.client() as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.cardinality(d=2.0)
                assert excinfo.value.status == 503
                assert "shard [0, 45) unavailable" in str(excinfo.value)
                assert time.monotonic() - started < 10.0
                # The surviving shard still answers single-node hits.
                assert client.cardinality(node=80, d=2.0)[
                    "value"
                ] == index.node_cardinality_at(80, 2.0)

    def test_sweep_never_returns_a_partial_merge(self, index):
        # A dead shard mid-fan-out must never yield a "sweep" missing
        # 45 nodes: it's the full merge or a 503.
        with start_cluster(
            index, workers=3, replicas=1, proxy=True, cache_size=0,
            rpc_timeout=2.0,
        ) as cluster:
            cluster.proxies[1].kill()
            with cluster.client() as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.closeness()
                assert excinfo.value.status == 503
                with pytest.raises(ServeClientError):
                    client.neighborhood()
                with pytest.raises(ServeClientError):
                    client.top_central(count=5)


class TestRecovery:
    def test_probe_marks_recovered_replica_back_up(self, index):
        with start_cluster(
            index, workers=1, replicas=2, proxy=True, cache_size=0,
            rpc_timeout=1.0,
        ) as cluster:
            cluster.proxies[0].mode = "refuse"
            cluster.router.reset_round_robin()
            with cluster.client() as client:
                client.cardinality(d=2.0)  # trips the mark-down
            assert _replica(cluster, 0, 0).state == STATE_DOWN
            cluster.proxies[0].mode = "pass"
            cluster.router._membership.probe_all()
            assert _replica(cluster, 0, 0).state == STATE_UP

    def test_down_replica_serves_as_last_resort(self, index):
        # Both replicas marked down (e.g. a probe blip): the router
        # must still *try* them rather than shed -- a down mark is a
        # hint, not a verdict.
        with start_cluster(
            index, workers=1, replicas=2, proxy=True, cache_size=0,
        ) as cluster:
            _replica(cluster, 0, 0).mark_down("probe blip")
            _replica(cluster, 0, 1).mark_down("probe blip")
            with cluster.client() as client:
                response = client.cardinality(d=2.0)
            assert dict(
                (label, value) for label, value in response["results"]
            ) == index.cardinality_at(2.0)
            # Answering marked it back up (passive recovery).
            states = {
                _replica(cluster, 0, p).state for p in (0, 1)
            }
            assert STATE_UP in states


def _chain_graph(n):
    return CSRGraph.from_edges(
        [(i, i + 1) for i in range(n - 1)], nodes=range(n)
    )


class TestWriteFaults:
    def test_update_refuses_without_full_membership(self, tmp_path):
        graph = _chain_graph(24)
        index = AdsIndex.build(graph, 4)
        with start_cluster(
            index, workers=2, replicas=1, graph=graph,
            tmp_path=tmp_path, proxy=True, cache_size=0,
            rpc_timeout=2.0,
        ) as cluster:
            cluster.proxies[1].mode = "refuse"
            with cluster.client() as client:
                # A read against the broken shard marks it down...
                with pytest.raises(ServeClientError):
                    client.cardinality(node=20, d=1.0)
                # ...and the write then refuses up front: nothing was
                # applied anywhere, the cluster state is untouched.
                with pytest.raises(ServeClientError) as excinfo:
                    client.update([[0, 23]])
                assert excinfo.value.status == 503
                assert "full membership" in str(excinfo.value)
                assert "[12, 24)" in str(excinfo.value)
                # Heal the shard: the same batch applies cleanly.
                cluster.proxies[1].mode = "pass"
                cluster.router._membership.probe_all()
                result = client.update([[0, 23]])
                assert result["applied_arcs"] == 2

    def test_replica_missing_a_batch_is_quarantined_stale(
        self, tmp_path
    ):
        graph = _chain_graph(24)
        index = AdsIndex.build(graph, 4)
        with start_cluster(
            index, workers=1, replicas=2, graph=graph,
            tmp_path=tmp_path, proxy=True, cache_size=0,
            rpc_timeout=2.0,
        ) as cluster:
            with cluster.client() as client:
                client.update([[0, 23]])
                # Replica 1 dies between the precheck and its apply:
                # its peers commit the batch, it doesn't.
                cluster.proxies[1].mode = "refuse"
                client.update([[0, 12]])
            assert _replica(cluster, 0, 1).state == STATE_STALE
            # Recovery does NOT revive it: its index content diverged.
            cluster.proxies[1].mode = "pass"
            cluster.router._membership.probe_all()
            assert _replica(cluster, 0, 1).state == STATE_STALE
            # Reads keep flowing from the converged replica, and its
            # answers reflect both batches.
            with cluster.client() as client:
                value = client.cardinality(node=0, d=1.0)["value"]
            assert value == cluster.index.node_cardinality_at(0, 1.0)
            snapshot = cluster.router._membership.snapshot(24)
            states = [
                replica["state"]
                for replica in snapshot[0]["replicas"]
            ]
            assert states.count(STATE_STALE) == 1

    def test_read_only_cluster_refuses_writes_with_409(self, index):
        with start_cluster(index, workers=2) as cluster:
            with cluster.client() as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.update([[0, 1]])
                assert excinfo.value.status == 409


class TestDurableWorkers:
    def test_killed_worker_replays_its_wal_to_byte_identity(
        self, tmp_path
    ):
        # The cluster-level durability contract: a worker SIGKILL'd
        # after acknowledging update batches (it never compacted, so
        # its flushed index is still the seed) restarts with its WAL
        # and recovers the exact pre-crash index.
        graph = _chain_graph(24)
        index = AdsIndex.build(graph, 4)
        with start_cluster(
            index, workers=1, replicas=1, graph=graph,
            tmp_path=tmp_path, proxy=True, cache_size=0,
            rpc_timeout=2.0, wal=True,
        ) as cluster:
            with cluster.client() as client:
                client.update([[0, 23]])
                client.update([[0, 12], [5, 40]])
            victim = cluster.workers[0]
            assert victim.wal.pending_records == 2
            digest_before = victim.index.content_digest()
            # Kill: drop the sockets; nothing gets flushed.
            cluster.proxies[0].kill()
            victim.shutdown()

            from cluster_harness import clone_graph

            restarted = AdsServer(
                AdsIndex.load(tmp_path / "cluster-seed.adsidx"),
                graph=clone_graph(graph),
                index_path=victim.index_path,
                wal_dir=tmp_path / "wal-g0r0",
            )
            assert restarted.wal_replayed == 2
            assert restarted.index.content_digest() == digest_before
            restarted.wal.close()


def _make_stale(cluster, batches=((0, 23), (0, 12))):
    """Apply *batches*, dropping group 0 / replica 1 mid-sequence so it
    misses the last one and lands in stale quarantine."""
    with cluster.client() as client:
        for position, batch in enumerate(batches):
            if position == len(batches) - 1:
                cluster.proxies[1].mode = "refuse"
            client.update([list(batch)])
    assert _replica(cluster, 0, 1).state == STATE_STALE
    cluster.proxies[1].mode = "pass"  # the worker is healthy again


class TestResync:
    def test_stale_replica_is_resynced_and_readmitted(self, tmp_path):
        # The self-healing path: a replica that missed a committed
        # batch (terminal quarantine for the prober) is re-seeded from
        # its healthy peer, digest-verified, and only then re-admitted.
        graph = _chain_graph(24)
        index = AdsIndex.build(graph, 4)
        with start_cluster(
            index, workers=1, replicas=2, graph=graph,
            tmp_path=tmp_path, proxy=True, cache_size=0,
            rpc_timeout=2.0,
        ) as cluster:
            _make_stale(cluster)
            outcomes = cluster.router.resync_stale()
            assert len(outcomes) == 1
            assert outcomes[0]["resynced"] is True
            assert outcomes[0]["donor"] == cluster.proxies[0].url
            assert _replica(cluster, 0, 1).state == STATE_UP
            # Content convergence, not just a status flip: the healed
            # replica's index is bit-identical to its donor's...
            assert (
                cluster.workers[1].index.content_digest()
                == cluster.workers[0].index.content_digest()
            )
            # ...its flushed layout on disk matches too...
            flushed = AdsIndex.load(cluster.workers[1].index_path)
            assert (
                flushed.content_digest()
                == cluster.workers[0].index.content_digest()
            )
            # ...and it answers queries with both batches applied.
            with QueryClient(cluster.workers[1].url) as direct:
                value = direct.cardinality(node=0, d=1.0)["value"]
            assert value == cluster.index.node_cardinality_at(0, 1.0)
            # A subsequent write fans out to the healed replica again.
            with cluster.client() as client:
                client.update([[1, 13]])
                stats = client.stats()
            assert (
                cluster.workers[1].index.content_digest()
                == cluster.workers[0].index.content_digest()
            )
            assert stats["cluster"]["rpc"]["resyncs"] == 1

    def test_resync_without_donor_leaves_replica_stale(self, tmp_path):
        graph = _chain_graph(24)
        index = AdsIndex.build(graph, 4)
        with start_cluster(
            index, workers=1, replicas=2, graph=graph,
            tmp_path=tmp_path, proxy=True, cache_size=0,
            rpc_timeout=2.0,
        ) as cluster:
            _make_stale(cluster)
            _replica(cluster, 0, 0).mark_down("outage")
            outcomes = cluster.router.resync_stale()
            assert outcomes[0]["resynced"] is False
            assert "donor" not in outcomes[0]
            # Back to stale -- the next sweep retries; never silently
            # re-admitted without a verified install.
            assert _replica(cluster, 0, 1).state == STATE_STALE

    def test_resync_failure_puts_replica_back_in_quarantine(
        self, tmp_path
    ):
        graph = _chain_graph(24)
        index = AdsIndex.build(graph, 4)
        with start_cluster(
            index, workers=1, replicas=2, graph=graph,
            tmp_path=tmp_path, proxy=True, cache_size=0,
            rpc_timeout=2.0,
        ) as cluster:
            _make_stale(cluster)
            # The install RPC dies mid-flight this time.
            cluster.proxies[1].mode = "refuse"
            outcomes = cluster.router.resync_stale()
            assert outcomes[0]["resynced"] is False
            assert _replica(cluster, 0, 1).state == STATE_STALE
            # Healed for real: the next sweep succeeds.
            cluster.proxies[1].mode = "pass"
            assert cluster.router.resync_stale()[0]["resynced"] is True
            assert _replica(cluster, 0, 1).state == STATE_UP

    def test_background_loop_heals_without_operator(self, tmp_path):
        graph = _chain_graph(24)
        index = AdsIndex.build(graph, 4)
        with start_cluster(
            index, workers=1, replicas=2, graph=graph,
            tmp_path=tmp_path, proxy=True, cache_size=0,
            rpc_timeout=2.0, resync_interval=0.1,
        ) as cluster:
            _make_stale(cluster)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if _replica(cluster, 0, 1).state == STATE_UP:
                    break
                time.sleep(0.05)
            assert _replica(cluster, 0, 1).state == STATE_UP
            assert (
                cluster.workers[1].index.content_digest()
                == cluster.workers[0].index.content_digest()
            )


class TestTopologyValidation:
    def _worker(self, index, node_range=None):
        return AdsServer(index, node_range=node_range, threads=2).start()

    def test_misranged_worker_is_refused_at_construction(self, index):
        # Workers split at 45, but the router is told the split is at
        # 40: every sweep would silently double-count [40, 45) and the
        # merge would still *look* plausible.  Constructing the router
        # must fail fast instead.
        w0 = self._worker(index, (0, 45))
        w1 = self._worker(index, (45, None))
        try:
            with pytest.raises(ClusterTopologyError) as excinfo:
                RouterServer(
                    index.nodes(),
                    [((0, 40), [w0.url]), ((40, None), [w1.url])],
                )
            message = str(excinfo.value)
            assert "serves node range [0, 45)" in message
            assert "declared as shard [0, 40)" in message
            # Both workers are mis-declared; both problems are listed.
            assert "serves node range [45, 90)" in message
        finally:
            w0.shutdown()
            w1.shutdown()

    def test_full_index_worker_overlapping_shards_is_refused(
        self, index
    ):
        # A worker started without --cluster sweeps every node; behind
        # a multi-group router it would overlap the other shard.
        full = self._worker(index)
        w1 = self._worker(index, (45, None))
        try:
            with pytest.raises(ClusterTopologyError) as excinfo:
                RouterServer(
                    index.nodes(),
                    [((0, 45), [full.url]), ((45, None), [w1.url])],
                )
            assert "not started as a shard worker" in str(excinfo.value)
        finally:
            full.shutdown()
            w1.shutdown()

    def test_worker_serving_a_different_index_is_refused(self, index):
        other = AdsIndex.build(path_graph(30).to_csr(), 4)
        impostor = self._worker(other)
        try:
            with pytest.raises(ClusterTopologyError) as excinfo:
                RouterServer(
                    index.nodes(), [((0, None), [impostor.url])]
                )
            assert "different node set" in str(excinfo.value)
        finally:
            impostor.shutdown()

    def test_full_index_worker_as_single_group_is_fine(self, index):
        # The degenerate one-group cluster: a full-index worker covers
        # exactly the declared range, so validation passes.
        worker = self._worker(index)
        try:
            router = RouterServer(
                index.nodes(), [((0, None), [worker.url])]
            )
            router.close()
        finally:
            worker.shutdown()

    def test_unreachable_worker_is_an_outage_not_a_misconfig(
        self, index
    ):
        # Validation distinguishes "can't reach it" (failover's
        # problem: mark down, construct anyway) from "reached it and
        # it's wrong" (refuse).
        w0 = self._worker(index, (0, 45))
        try:
            router = RouterServer(
                index.nodes(),
                [
                    ((0, 45), [w0.url]),
                    ((45, None), ["http://127.0.0.1:9"]),
                ],
            )
            try:
                replica = router._membership.groups[1].replicas[0]
                assert replica.state == STATE_DOWN
            finally:
                router.close()
        finally:
            w0.shutdown()

    def test_validation_can_be_disabled(self, index):
        w0 = self._worker(index, (0, 45))
        w1 = self._worker(index, (45, None))
        try:
            router = RouterServer(
                index.nodes(),
                [((0, 40), [w0.url]), ((40, None), [w1.url])],
                validate_topology=False,
            )
            router.close()
        finally:
            w0.shutdown()
            w1.shutdown()

    def test_router_stats_surface_each_workers_served_range(
        self, index
    ):
        # The silent-misrange fix: /stats names what every replica
        # *actually* serves, so an operator can audit the tiling.
        with start_cluster(index, workers=2) as cluster:
            with cluster.client() as client:
                stats = client.stats()
            groups = stats["cluster"]["groups"]
            ranges = [
                replica["node_range"]
                for group in groups
                for replica in group["replicas"]
            ]
            # The last worker is open-ended (it also owns nodes later
            # appended by updates), reported as a null stop.
            assert ranges == [[0, 45], [45, None]]
            digests = {
                replica["labels_digest"]
                for group in groups
                for replica in group["replicas"]
            }
            assert len(digests) == 1 and None not in digests
            # One worker's range must not masquerade as the cluster's.
            assert "node_range" not in stats["index"]
