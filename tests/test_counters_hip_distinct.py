"""Tests for the streaming HIP distinct counter (Section 6, Algorithm 3)."""

import math
import statistics

import pytest

from repro.counters import HipDistinctCounter, algorithm3_counter
from repro.rand.hashing import HashFamily
from repro.sketches import BottomKSketch, HyperLogLog, KMinsSketch, KPartitionSketch


class TestBasics:
    def test_first_element_weight_one(self, family):
        counter = algorithm3_counter(16, family)
        counter.add("x")
        assert counter.estimate() == pytest.approx(1.0)

    def test_exact_while_sketch_accepts_everything(self, family):
        # bottom-k: the first k distinct elements are all inserted with
        # probability 1, so the estimate is exactly the count.
        counter = HipDistinctCounter(BottomKSketch(10, family))
        for i in range(10):
            counter.add(i)
            assert counter.estimate() == pytest.approx(i + 1)

    def test_repeats_ignored(self, family):
        counter = algorithm3_counter(16, family)
        for i in range(500):
            counter.add(i % 50)
        baseline = counter.estimate()
        for i in range(50):
            counter.add(i)
        assert counter.estimate() == baseline

    def test_update_returns_modification_count(self, family):
        counter = HipDistinctCounter(BottomKSketch(8, family))
        changes = counter.update(range(100))
        assert changes >= 8
        assert changes <= 100


class TestAccuracyAllFlavors:
    @pytest.mark.parametrize(
        "make_sketch",
        [
            lambda fam: BottomKSketch(24, fam),
            lambda fam: KMinsSketch(24, fam),
            lambda fam: KPartitionSketch(24, fam),
            lambda fam: HyperLogLog(24, fam),
        ],
        ids=["bottomk", "kmins", "kpartition", "hll-registers"],
    )
    def test_mean_near_truth(self, make_sketch):
        n, runs = 3000, 50
        values = []
        for seed in range(runs):
            counter = HipDistinctCounter(make_sketch(HashFamily(seed)))
            counter.update(range(n))
            values.append(counter.estimate())
        assert statistics.mean(values) == pytest.approx(n, rel=0.08)


class TestAgainstHLL:
    def test_hip_beats_hll_nrmse(self):
        """The paper's headline: HIP on the same sketch beats the HLL
        estimator (0.866/sqrt(k) vs 1.08/sqrt(k))."""
        n, k, runs = 20_000, 32, 80
        hip_errors, hll_errors = [], []
        for seed in range(runs):
            counter = algorithm3_counter(k, HashFamily(seed))
            counter.update(range(n))
            hip_errors.append(counter.estimate() / n - 1.0)
            hll_errors.append(counter.sketch.estimate() / n - 1.0)
        hip_nrmse = math.sqrt(statistics.mean(e * e for e in hip_errors))
        hll_nrmse = math.sqrt(statistics.mean(e * e for e in hll_errors))
        assert hip_nrmse < hll_nrmse

    def test_saturation_graceful(self, family):
        # 1-bit registers saturate almost immediately; the estimate must
        # stay finite and stop growing.
        counter = HipDistinctCounter(HyperLogLog(4, family, register_bits=1))
        counter.update(range(1000))
        assert counter.saturated
        frozen = counter.estimate()
        counter.update(range(1000, 2000))
        assert counter.estimate() == frozen
        assert math.isfinite(frozen)


class TestMorrisBacked:
    def test_approximate_counter_backing(self):
        n, runs = 2000, 80
        values = []
        for seed in range(runs):
            counter = HipDistinctCounter(
                BottomKSketch(32, HashFamily(seed)),
                approximate_counter_base=1.0 + 1.0 / 32,
                counter_seed=seed,
            )
            counter.update(range(n))
            values.append(counter.estimate())
        # still unbiased, slightly noisier than the exact-register version
        assert statistics.mean(values) == pytest.approx(n, rel=0.08)

    def test_invalid_base(self, family):
        with pytest.raises(Exception):
            HipDistinctCounter(
                BottomKSketch(4, family), approximate_counter_base=1.0
            )
