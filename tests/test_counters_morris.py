"""Tests for Morris/Flajolet approximate counters (Section 7)."""

import statistics

import pytest

from repro.counters import MorrisCounter
from repro.errors import ParameterError


class TestBasics:
    def test_initial_estimate_zero(self):
        assert MorrisCounter().estimate() == 0.0

    def test_first_unit_increment_deterministic(self):
        # From x=0, add(1) must land exactly on estimate 1 for b=2.
        counter = MorrisCounter(b=2.0, seed=1)
        counter.increment()
        assert counter.estimate() == 1.0

    def test_large_single_add_deterministic_part(self):
        counter = MorrisCounter(b=2.0, seed=1)
        counter.add(1023.0)  # 2^10 - 1: exact counter value x=10
        assert counter.x in (10, 11)
        assert counter.estimate() in (1023.0, 2047.0)

    def test_zero_add_noop(self):
        counter = MorrisCounter(seed=0)
        counter.add(0.0)
        assert counter.x == 0

    def test_negative_add_rejected(self):
        with pytest.raises(ParameterError):
            MorrisCounter().add(-1.0)

    def test_invalid_base(self):
        with pytest.raises(ParameterError):
            MorrisCounter(b=1.0)

    def test_exponent_bits_loglog(self):
        counter = MorrisCounter(b=2.0, seed=3)
        counter.add(1e9)
        assert counter.exponent_bits <= 6  # log2 log2 1e9 ~ 5


class TestUnbiasedness:
    def test_unit_increments(self):
        total, runs = 200, 400
        values = []
        for seed in range(runs):
            counter = MorrisCounter(b=2.0, seed=seed)
            for _ in range(total):
                counter.increment()
            values.append(counter.estimate())
        mean = statistics.mean(values)
        # stderr of the mean ~ sqrt(b-1)/2 * total / sqrt(runs)
        assert mean == pytest.approx(total, rel=0.12)

    def test_weighted_updates(self):
        values = []
        for seed in range(400):
            counter = MorrisCounter(b=1.5, seed=seed)
            counter.add(37.0)
            counter.add(0.5)
            counter.add(1000.0)
            values.append(counter.estimate())
        assert statistics.mean(values) == pytest.approx(1037.5, rel=0.05)

    def test_merge_unbiased(self):
        values = []
        for seed in range(400):
            a = MorrisCounter(b=1.5, seed=seed)
            b = MorrisCounter(b=1.5, seed=seed + 10_000)
            a.add(300.0)
            b.add(700.0)
            a.merge(b)
            values.append(a.estimate())
        assert statistics.mean(values) == pytest.approx(1000.0, rel=0.05)

    def test_smaller_base_smaller_variance(self):
        def cv(base):
            values = []
            for seed in range(200):
                counter = MorrisCounter(b=base, seed=seed)
                for _ in range(200):
                    counter.increment()
                values.append(counter.estimate())
            return statistics.pstdev(values) / statistics.mean(values)

        assert cv(1.1) < cv(2.0)


class TestMergeValidation:
    def test_base_mismatch(self):
        with pytest.raises(ParameterError):
            MorrisCounter(b=2.0).merge(MorrisCounter(b=1.5))

    def test_type_check(self):
        with pytest.raises(ParameterError):
            MorrisCounter().merge("not a counter")
