"""Doctests of the public query surface, wired into the tier-1 run.

Every runnable example in the docstrings of the serving-facing modules
(``AdsIndex`` queries, ``build_ads_set``, the CLI handlers, the serve
layer) is executed here, so the documented outputs can never drift from
the code.  CI additionally runs ``pytest --doctest-modules`` over the
same files in the doc-integrity job; this in-suite version keeps the
examples honest on every local ``pytest`` invocation too.
"""

import doctest

import pytest

import repro
import repro.ads
import repro.ads.index
import repro.ads.wal
import repro.cli
import repro.serve.cache
import repro.serve.cluster
import repro.serve.locks
import repro.serve.membership
import repro.serve.registry
import repro.serve.server

MODULES = (
    repro,
    repro.ads,
    repro.ads.index,
    repro.ads.wal,
    repro.cli,
    repro.serve.cache,
    repro.serve.cluster,
    repro.serve.locks,
    repro.serve.membership,
    repro.serve.registry,
    repro.serve.server,
)


@pytest.mark.parametrize(
    "module", MODULES, ids=lambda module: module.__name__
)
def test_module_doctests(module):
    results = doctest.testmod(
        module,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
        verbose=False,
    )
    assert results.failed == 0
    assert results.attempted > 0, (
        f"{module.__name__} documents no runnable examples; the "
        "docstring pass promises at least one per public surface module"
    )
