"""Tests for the basic MinHash cardinality estimators (Section 4)."""

import math
import random
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EstimatorError, ParameterError
from repro.estimators.basic import (
    bottom_k_cardinality,
    k_mins_cardinality,
    k_partition_cardinality,
)


class TestKMins:
    def test_requires_k_at_least_two(self):
        with pytest.raises(ParameterError):
            k_mins_cardinality([0.5])

    def test_empty_set_estimates_zero(self):
        assert k_mins_cardinality([1.0, 1.0, 1.0]) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(EstimatorError):
            k_mins_cardinality([0.5, 1.5])

    def test_unbiased_simulation(self):
        n, k, runs = 1000, 12, 600
        rng = random.Random(5)
        values = []
        for _ in range(runs):
            minima = [min(rng.random() for _ in range(n)) for _ in range(k)]
            values.append(k_mins_cardinality(minima))
        assert statistics.mean(values) == pytest.approx(n, rel=0.05)

    def test_cv_matches_analysis(self):
        n, k, runs = 2000, 20, 800
        rng = random.Random(7)
        values = []
        for _ in range(runs):
            # minimum of n uniforms via inverse transform: 1-(1-u)^(1/n)
            minima = [
                1.0 - (1.0 - rng.random()) ** (1.0 / n) for _ in range(k)
            ]
            values.append(k_mins_cardinality(minima))
        cv = statistics.pstdev(values) / statistics.mean(values)
        assert cv == pytest.approx(1.0 / math.sqrt(k - 2), rel=0.3)


class TestBottomK:
    def test_exact_below_k(self):
        assert bottom_k_cardinality(3, 1.0, 8) == 3.0
        assert bottom_k_cardinality(0, 1.0, 8) == 0.0

    def test_formula_at_and_above_k(self):
        assert bottom_k_cardinality(8, 0.1, 8) == pytest.approx(70.0)

    def test_uniform_tau_domain(self):
        with pytest.raises(ParameterError):
            bottom_k_cardinality(8, 0.0, 8)
        with pytest.raises(ParameterError):
            bottom_k_cardinality(8, 1.5, 8)

    def test_exponential_ranks_supported(self):
        # exponential tau -> inclusion probability 1 - exp(-tau)
        tau = 0.01
        estimate = bottom_k_cardinality(8, tau, 8, sup=math.inf)
        assert estimate == pytest.approx(7.0 / (-math.expm1(-tau)))

    def test_unsupported_sup_rejected(self):
        with pytest.raises(EstimatorError):
            bottom_k_cardinality(8, 0.5, 8, sup=2.0)

    def test_unbiased_simulation(self):
        n, k, runs = 1500, 16, 600
        rng = random.Random(11)
        values = []
        for _ in range(runs):
            ranks = sorted(rng.random() for _ in range(n))
            values.append(bottom_k_cardinality(k, ranks[k - 1], k))
        assert statistics.mean(values) == pytest.approx(n, rel=0.05)


class TestKPartition:
    def test_zero_and_one_bucket(self):
        assert k_partition_cardinality([1.0, 1.0], [None, None]) == 0.0
        assert k_partition_cardinality([0.5, 1.0], ["a", None]) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            k_partition_cardinality([0.5], ["a", "b"])

    def test_bad_minimum_rejected(self):
        # a "nonempty" bucket whose minimum is still 1.0 is inconsistent
        with pytest.raises(EstimatorError):
            k_partition_cardinality([1.0, 0.5], ["a", "b"])

    def test_unbiased_simulation(self):
        n, k, runs = 2000, 16, 400
        rng = random.Random(13)
        values = []
        for _ in range(runs):
            minima = [1.0] * k
            argmin = [None] * k
            for i in range(n):
                b = rng.randrange(k)
                r = rng.random()
                if r < minima[b]:
                    minima[b] = r
                    argmin[b] = i
            values.append(k_partition_cardinality(minima, argmin))
        assert statistics.mean(values) == pytest.approx(n, rel=0.06)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=3, max_value=64), st.integers(min_value=0, max_value=2**31))
def test_bottomk_estimate_nonnegative_property(k, seed):
    rng = random.Random(seed)
    n = rng.randrange(0, 200)
    ranks = sorted(rng.random() for _ in range(n))
    if n < k:
        assert bottom_k_cardinality(n, 1.0, k) == float(n)
    else:
        value = bottom_k_cardinality(k, ranks[k - 1], k)
        assert value >= 0.0
        assert math.isfinite(value)
