"""Tests for the closed-form bounds module (the paper's stated constants)."""

import math

import pytest

from repro._util import harmonic_number
from repro.errors import ParameterError
from repro.estimators.bounds import (
    basic_cv_lower_bound,
    basic_cv_upper_bound,
    basic_mre_kmins,
    basic_mre_kmins_approx,
    expected_ads_size_bottomk,
    expected_ads_size_kpartition,
    hip_base_b_cv,
    hip_cv_finite_n,
    hip_cv_lower_bound,
    hip_cv_upper_bound,
    hip_mre_reference,
    hll_nrmse_reference,
)


class TestCvFormulas:
    def test_paper_values(self):
        assert basic_cv_upper_bound(3) == 1.0
        assert basic_cv_upper_bound(6) == 0.5
        assert hip_cv_upper_bound(2) == pytest.approx(1 / math.sqrt(2))
        assert hip_cv_lower_bound(8) == 0.25

    def test_hip_halves_variance(self):
        # CV_hip^2 ~ CV_basic^2 / 2 up to the k-1 vs k-2 shift
        for k in (10, 50, 200):
            ratio = hip_cv_upper_bound(k) ** 2 / basic_cv_upper_bound(k) ** 2
            assert ratio == pytest.approx(0.5, rel=0.15)

    def test_ordering_lower_bounds(self):
        for k in (4, 16, 64):
            assert hip_cv_lower_bound(k) < hip_cv_upper_bound(k)
            assert basic_cv_lower_bound(k) < basic_cv_upper_bound(k)

    def test_finite_n_bound(self):
        # zero at n <= k, approaches the asymptotic bound for n >> k
        assert hip_cv_finite_n(8, 8) == 0.0
        assert hip_cv_finite_n(10**6, 8) == pytest.approx(
            hip_cv_upper_bound(8), rel=1e-3
        )
        assert hip_cv_finite_n(20, 8) < hip_cv_upper_bound(8)

    def test_domain_checks(self):
        with pytest.raises(ParameterError):
            basic_cv_upper_bound(2)
        with pytest.raises(ParameterError):
            hip_cv_upper_bound(1)


class TestBaseB:
    def test_base2_constant(self):
        # sqrt(3/(4(k-1))) ~ 0.866/sqrt(k) for large k
        k = 10_000
        assert hip_base_b_cv(k, 2.0) * math.sqrt(k) == pytest.approx(
            0.866, abs=0.01
        )

    def test_base_sqrt2_constant(self):
        k = 10_000
        assert hip_base_b_cv(k, math.sqrt(2.0)) * math.sqrt(k) == pytest.approx(
            0.777, abs=0.01
        )

    def test_smaller_base_better(self):
        assert hip_base_b_cv(16, math.sqrt(2)) < hip_base_b_cv(16, 2.0)

    def test_hll_reference(self):
        assert hll_nrmse_reference(16) == pytest.approx(1.08 / 4.0)


class TestMre:
    def test_exact_vs_approximation(self):
        for k in (10, 25, 100):
            assert basic_mre_kmins(k) == pytest.approx(
                basic_mre_kmins_approx(k), rel=0.1
            )

    def test_hip_mre_smaller(self):
        for k in (5, 10, 50):
            assert hip_mre_reference(k) < basic_mre_kmins_approx(k)


class TestAdsSizes:
    def test_bottomk_formula(self):
        # k + k(H_n - H_k)
        n, k = 1000, 10
        expected = k + k * (harmonic_number(n) - harmonic_number(k))
        assert expected_ads_size_bottomk(n, k) == pytest.approx(expected)

    def test_small_n_is_n(self):
        assert expected_ads_size_bottomk(5, 10) == 5.0
        assert expected_ads_size_bottomk(0, 3) == 0.0

    def test_kpartition_smaller_than_bottomk(self):
        # k H_{n/k} = k(H_n - H_k) roughly; bottom-k adds the +k term
        n, k = 10_000, 16
        assert expected_ads_size_kpartition(n, k) < expected_ads_size_bottomk(
            n, k
        )

    def test_logarithmic_growth(self):
        k = 8
        s1 = expected_ads_size_bottomk(10**3, k)
        s2 = expected_ads_size_bottomk(10**6, k)
        # tripling the exponent adds ~ k ln(10^3) ~ 55
        assert s2 - s1 == pytest.approx(k * math.log(10**3), rel=0.01)
