"""Tests for HIP adjusted weights (Section 5)."""

import math
import random
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EstimatorError
from repro.estimators.hip import (
    bottom_k_adjusted_weights,
    hip_cardinality,
    hip_statistic,
    k_mins_adjusted_weights,
    k_partition_adjusted_weights,
)


class TestBottomKWeights:
    def test_first_k_have_weight_one(self):
        rng = random.Random(1)
        ranks = [rng.random() for _ in range(50)]
        weights = bottom_k_adjusted_weights(ranks, 8)
        assert weights[:8] == [1.0] * 8

    def test_weights_nondecreasing_along_scan(self):
        # inclusion gets harder with distance, so 1/tau grows
        rng = random.Random(2)
        ranks = [rng.random() for _ in range(500)]
        weights = bottom_k_adjusted_weights(ranks, 5)
        assert all(
            weights[i + 1] >= weights[i] - 1e-12
            for i in range(len(weights) - 1)
        )

    def test_matches_manual_threshold(self):
        ranks = [0.9, 0.5, 0.2, 0.7, 0.1]
        weights = bottom_k_adjusted_weights(ranks, 2)
        # entry 2 (rank 0.2): 2nd smallest of {0.9, 0.5} = 0.9
        assert weights[2] == pytest.approx(1 / 0.9)
        # entry 3 (rank 0.7): 2nd smallest of {0.9,0.5,0.2} = 0.5
        assert weights[3] == pytest.approx(1 / 0.5)
        # entry 4: 2nd smallest of {0.9,0.5,0.2,0.7} = 0.5
        assert weights[4] == pytest.approx(1 / 0.5)

    def test_custom_inclusion_probability(self):
        ranks = [0.5, 0.3, 0.2]
        weights = bottom_k_adjusted_weights(
            ranks, 1, inclusion_probability=lambda tau, i: tau / 2
        )
        assert weights[1] == pytest.approx(2 / 0.5)

    def test_invalid_probability_rejected(self):
        with pytest.raises(EstimatorError):
            bottom_k_adjusted_weights(
                [0.5, 0.3], 1, inclusion_probability=lambda tau, i: 0.0
            )

    def test_unbiased_stream_estimate(self):
        """Sum of adjusted weights of sketch-entering elements must be
        unbiased for the stream length (the HIP cardinality estimator)."""
        n, k, runs = 800, 6, 500
        values = []
        for seed in range(runs):
            rng = random.Random(seed)
            ranks_all = [rng.random() for _ in range(n)]
            # ADS of the stream = prefix bottom-k membership events
            import heapq

            heap, entry_ranks = [], []
            for r in ranks_all:
                if len(heap) < k:
                    heapq.heappush(heap, -r)
                    entry_ranks.append(r)
                elif r < -heap[0]:
                    heapq.heapreplace(heap, -r)
                    entry_ranks.append(r)
            values.append(sum(bottom_k_adjusted_weights(entry_ranks, k)))
        assert statistics.mean(values) == pytest.approx(n, rel=0.05)

    def test_cv_within_theorem_bound(self):
        n, k, runs = 2000, 16, 300
        values = []
        for seed in range(runs):
            rng = random.Random(10_000 + seed)
            import heapq

            heap, entry_ranks = [], []
            for _ in range(n):
                r = rng.random()
                if len(heap) < k:
                    heapq.heappush(heap, -r)
                    entry_ranks.append(r)
                elif r < -heap[0]:
                    heapq.heapreplace(heap, -r)
                    entry_ranks.append(r)
            values.append(sum(bottom_k_adjusted_weights(entry_ranks, k)))
        cv = statistics.pstdev(values) / statistics.mean(values)
        assert cv < 1.3 / math.sqrt(2 * (k - 1))  # Theorem 5.1 + slack


class TestKMinsWeights:
    def test_source_weight_one(self):
        weights = k_mins_adjusted_weights([[0.5, 0.3]], 2)
        assert weights == [1.0]

    def test_formula(self):
        vectors = [[0.5, 0.8], [0.2, 0.9]]
        weights = k_mins_adjusted_weights(vectors, 2)
        tau = 1 - (1 - 0.5) * (1 - 0.8)
        assert weights[1] == pytest.approx(1 / tau)

    def test_vector_length_checked(self):
        with pytest.raises(EstimatorError):
            k_mins_adjusted_weights([[0.5]], 2)


class TestKPartitionWeights:
    def test_source_weight_one(self):
        assert k_partition_adjusted_weights([(0, 0.4)], 4) == [1.0]

    def test_formula(self):
        entries = [(0, 0.4), (1, 0.6), (0, 0.1)]
        weights = k_partition_adjusted_weights(entries, 2)
        # second entry: minima = [0.4, 1] -> tau = 0.7
        assert weights[1] == pytest.approx(1 / 0.7)
        # third entry: minima = [0.4, 0.6] -> tau = 0.5
        assert weights[2] == pytest.approx(1 / 0.5)

    def test_bucket_range_checked(self):
        with pytest.raises(EstimatorError):
            k_partition_adjusted_weights([(5, 0.1)], 4)


class TestAggregators:
    def test_hip_cardinality_distance_filter(self):
        weights = [1.0, 1.0, 2.0]
        distances = [0.0, 1.0, 5.0]
        assert hip_cardinality(weights, distances, 1.0) == 2.0
        assert hip_cardinality(weights, distances) == 4.0

    def test_hip_statistic(self):
        weights = [1.0, 2.0]
        distances = [0.0, 3.0]
        nodes = ["a", "b"]
        value = hip_statistic(
            weights, distances, nodes, lambda node, d: d * 10
        )
        assert value == pytest.approx(60.0)

    def test_length_mismatch(self):
        with pytest.raises(EstimatorError):
            hip_cardinality([1.0], [1.0, 2.0])
        with pytest.raises(EstimatorError):
            hip_statistic([1.0], [1.0], ["a", "b"], lambda n, d: 1.0)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(0.001, 0.999), min_size=1, max_size=60),
    st.integers(min_value=1, max_value=10),
)
def test_bottomk_weights_properties(ranks, k):
    weights = bottom_k_adjusted_weights(ranks, k)
    assert len(weights) == len(ranks)
    assert all(w >= 1.0 - 1e-12 for w in weights)  # probabilities <= 1
    assert weights[: min(k, len(ranks))] == [1.0] * min(k, len(ranks))
