"""Tests for the permutation cardinality estimator (Section 5.4)."""

import itertools
import random
import statistics

import pytest

from repro.errors import EstimatorError, ParameterError
from repro.estimators.permutation import PermutationCardinalityEstimator
from repro.rand.ranks import PermutationRanks


class TestMechanics:
    def test_exact_for_first_k(self):
        est = PermutationCardinalityEstimator(5, n=100)
        for i, sigma in enumerate([50, 30, 80, 10, 60], start=1):
            est.add_rank(sigma)
            assert est.estimate() == pytest.approx(i)

    def test_repeat_ranks_ignored(self):
        est = PermutationCardinalityEstimator(3, n=50)
        est.add_rank(10)
        assert not est.add_rank(10)
        assert est.estimate() == 1.0

    def test_rank_domain_checked(self):
        est = PermutationCardinalityEstimator(3, n=50)
        with pytest.raises(ParameterError):
            est.add_rank(0)
        with pytest.raises(ParameterError):
            est.add_rank(51)

    def test_requires_ranks_or_n(self):
        with pytest.raises(EstimatorError):
            PermutationCardinalityEstimator(3)

    def test_add_requires_rank_map(self):
        est = PermutationCardinalityEstimator(3, n=10)
        with pytest.raises(EstimatorError):
            est.add("element")

    def test_with_rank_map(self):
        ranks = PermutationRanks(range(20), seed=4)
        est = PermutationCardinalityEstimator(4, ranks=ranks)
        est.update(range(20))
        assert est.saturated
        # all n elements seen: the corrected estimate should be close to n
        assert est.estimate() == pytest.approx(20, rel=0.35)

    def test_saturation_detection(self):
        est = PermutationCardinalityEstimator(2, n=10)
        est.add_rank(5)
        est.add_rank(1)
        assert not est.saturated
        est.add_rank(2)
        assert est.saturated


class TestExactExpectations:
    """Exhaustive checks over all permutations of a small domain: the
    estimator is exactly unbiased at s <= k and s = n (and nearly so in
    between -- the plug-in bias the paper accepts, see EXPERIMENTS.md)."""

    def _expectation(self, n, k, s_query):
        total = 0.0
        count = 0
        for sigma in itertools.permutations(range(1, n + 1)):
            est = PermutationCardinalityEstimator(k, n=n)
            for x in sigma[:s_query]:
                est.add_rank(x)
            total += est.estimate()
            count += 1
        return total / count

    def test_exact_at_extremes(self):
        n, k = 6, 2
        assert self._expectation(n, k, 1) == pytest.approx(1.0)
        assert self._expectation(n, k, 2) == pytest.approx(2.0)
        assert self._expectation(n, k, n) == pytest.approx(float(n))

    def test_near_unbiased_midrange(self):
        n, k = 6, 2
        for s in (3, 4, 5):
            assert self._expectation(n, k, s) == pytest.approx(s, rel=0.05)


class TestAccuracy:
    def test_beats_hip_bound_at_large_fraction(self):
        """Section 5.4 / Figure 2: for cardinality >= 0.2 n, the
        permutation estimator has a clear advantage."""
        n, k, runs, s = 1000, 10, 300, 900
        errors = []
        for seed in range(runs):
            rng = random.Random(seed)
            sigma = list(range(1, n + 1))
            rng.shuffle(sigma)
            est = PermutationCardinalityEstimator(k, n=n)
            for x in sigma[:s]:
                est.add_rank(x)
            errors.append(est.estimate() / s - 1.0)
        nrmse = (statistics.mean(e * e for e in errors)) ** 0.5
        import math

        hip_bound = 1.0 / math.sqrt(2 * (k - 1))
        assert nrmse < hip_bound  # visibly better than plain HIP

    def test_full_domain_low_error(self):
        n, k, runs = 500, 10, 200
        errors = []
        for seed in range(runs):
            rng = random.Random(1_000 + seed)
            sigma = list(range(1, n + 1))
            rng.shuffle(sigma)
            est = PermutationCardinalityEstimator(k, n=n)
            for x in sigma:
                est.add_rank(x)
            errors.append(est.estimate() / n - 1.0)
        nrmse = (statistics.mean(e * e for e in errors)) ** 0.5
        assert nrmse < 0.12
