"""Tests for the ADS-size-only cardinality estimator (Section 8)."""

import random
import statistics

import pytest

from repro.errors import ParameterError
from repro.estimators.size import (
    ads_size_distribution,
    size_cardinality_estimate,
    size_estimates_by_recurrence,
)


class TestClosedForm:
    def test_identity_below_k(self):
        for s in range(6):
            assert size_cardinality_estimate(s, 5) == float(s)

    def test_value_at_k(self):
        # closed form at s = k collapses to k: k(1+1/k) - 1 = k
        assert size_cardinality_estimate(5, 5) == 5.0

    def test_k_equals_one_powers_of_two(self):
        # Lemma 8.1's closed form gives 2^s - 1 at k=1 (the text's "2^s"
        # drops the -1); the recurrence below confirms the -1 version.
        assert size_cardinality_estimate(3, 1) == 7.0
        assert size_cardinality_estimate(10, 1) == 1023.0

    def test_domain_checks(self):
        with pytest.raises(ParameterError):
            size_cardinality_estimate(-1, 3)
        with pytest.raises(ParameterError):
            size_cardinality_estimate(3, 0)

    @pytest.mark.parametrize("k", [1, 2, 3, 8])
    def test_matches_recurrence(self, k):
        s_max = k + 10
        recurrence = size_estimates_by_recurrence(k, s_max)
        for s in range(k, s_max + 1):
            assert size_cardinality_estimate(s, k) == pytest.approx(
                recurrence[s], rel=1e-9
            )


class TestSizeDistribution:
    def test_distribution_sums_to_one(self):
        for n in (0, 1, 5, 20):
            assert sum(ads_size_distribution(n, 3)) == pytest.approx(1.0)

    def test_small_cases(self):
        # n <= k: the sketch holds everything with probability 1
        dist = ads_size_distribution(3, 5)
        assert dist[3] == pytest.approx(1.0)

    def test_unbiasedness_identity(self):
        """sum_i C_{i,n} E_i = n for every n (the defining property)."""
        for k in (1, 2, 4):
            for n in (k, k + 1, k + 5, k + 12):
                dist = ads_size_distribution(n, k)
                value = sum(
                    size_cardinality_estimate(i, k) * p
                    for i, p in enumerate(dist)
                )
                assert value == pytest.approx(float(n), rel=1e-9)


class TestSimulation:
    def test_empirical_unbiasedness(self):
        """Feed n distinct elements, count sketch updates, estimate."""
        n, k, runs = 300, 4, 4000
        rng = random.Random(3)
        values = []
        for _ in range(runs):
            count, threshold = 0, []
            import heapq

            for _ in range(n):
                r = rng.random()
                if len(threshold) < k:
                    heapq.heappush(threshold, -r)
                    count += 1
                elif r < -threshold[0]:
                    heapq.heapreplace(threshold, -r)
                    count += 1
            values.append(size_cardinality_estimate(count, k))
        # heavy-tailed estimator: generous tolerance, large run count
        assert statistics.mean(values) == pytest.approx(n, rel=0.25)
