"""Tests for Q_g / C_{alpha,beta} estimation and the naive baseline."""


import pytest

from repro.errors import EstimatorError
from repro.estimators.naive import naive_q_statistic
from repro.estimators.statistics import (
    closeness_centrality_estimate,
    exponential_decay_kernel,
    harmonic_kernel,
    inverse_polynomial_kernel,
    neighborhood_kernel,
    q_statistic_estimate,
    reachability_kernel,
)


class TestKernels:
    def test_neighborhood(self):
        alpha = neighborhood_kernel(3.0)
        assert alpha(0.0) == 1.0
        assert alpha(3.0) == 1.0
        assert alpha(3.1) == 0.0

    def test_reachability(self):
        alpha = reachability_kernel()
        assert alpha(10.0) == 1.0

    def test_exponential(self):
        alpha = exponential_decay_kernel()
        assert alpha(0.0) == 1.0
        assert alpha(1.0) == 0.5
        assert alpha(3.0) == 0.125
        scaled = exponential_decay_kernel(half_life=2.0)
        assert scaled(2.0) == 0.5

    def test_exponential_domain(self):
        with pytest.raises(EstimatorError):
            exponential_decay_kernel(0.0)

    def test_harmonic(self):
        alpha = harmonic_kernel()
        assert alpha(4.0) == 0.25
        assert alpha(0.0) == 0.0

    def test_inverse_polynomial(self):
        alpha = inverse_polynomial_kernel(2.0)
        assert alpha(2.0) == 0.25
        with pytest.raises(EstimatorError):
            inverse_polynomial_kernel(0.0)


class TestQStatistic:
    def test_exact_when_weights_exact(self):
        nodes = ["s", "a", "b"]
        distances = [0.0, 1.0, 2.0]
        weights = [1.0, 1.0, 1.0]  # "perfect" sketch: everything sampled
        value = q_statistic_estimate(
            nodes, distances, weights, lambda n, d: d
        )
        assert value == 3.0

    def test_source_exclusion(self):
        nodes = ["s", "a"]
        distances = [0.0, 2.0]
        weights = [1.0, 1.5]
        with_source = q_statistic_estimate(
            nodes, distances, weights, lambda n, d: 1.0
        )
        without = q_statistic_estimate(
            nodes, distances, weights, lambda n, d: 1.0, include_source=False
        )
        assert with_source == 2.5
        assert without == 1.5

    def test_negative_g_rejected(self):
        with pytest.raises(EstimatorError):
            q_statistic_estimate(["a"], [1.0], [1.0], lambda n, d: -1.0)

    def test_length_mismatch(self):
        with pytest.raises(EstimatorError):
            q_statistic_estimate(["a"], [1.0, 2.0], [1.0], lambda n, d: 1.0)


class TestClosenessEstimate:
    def test_default_is_sum_of_distances(self):
        value = closeness_centrality_estimate(
            ["s", "a", "b"], [0.0, 1.0, 3.0], [1.0, 1.0, 2.0]
        )
        assert value == 1.0 + 6.0

    def test_alpha_beta(self):
        value = closeness_centrality_estimate(
            ["s", "a", "b"],
            [0.0, 1.0, 2.0],
            [1.0, 1.0, 1.0],
            alpha=lambda d: 2.0 ** (-d),
            beta=lambda n: 2.0 if n == "b" else 1.0,
        )
        assert value == pytest.approx(0.5 + 2 * 0.25)


class TestNaiveBaseline:
    def test_small_set_exact(self):
        entries = [(0.1, "s", 0.0), (0.4, "a", 1.0)]
        value = naive_q_statistic(entries, 5, lambda n, d: d)
        assert value == 1.0  # fewer than k entries: exact sum

    def test_sample_mean_extrapolation(self):
        # 3 samples of g-values 1,1,1 with tau -> n_hat * 1
        entries = [(0.1, "a", 1.0), (0.2, "b", 2.0), (0.3, "c", 3.0),
                   (0.9, "d", 4.0)]
        value = naive_q_statistic(entries, 3, lambda n, d: 1.0)
        n_hat = (3 - 1) / 0.3
        assert value == pytest.approx(n_hat)

    def test_empty(self):
        assert naive_q_statistic([], 4, lambda n, d: d) == 0.0

    def test_negative_g_rejected(self):
        with pytest.raises(EstimatorError):
            naive_q_statistic([(0.1, "a", 1.0)], 1, lambda n, d: -2.0)
