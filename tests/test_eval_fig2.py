"""Tests for the Figure 2 harness: fast paths must equal the library's
object-level implementations, and reduced panels must reproduce the
paper's qualitative shapes."""

import math

import pytest

# repro.eval's fast paths are NumPy simulations; without the [fast]
# extra this whole module skips (the library's serving stack does not
# need NumPy -- see repro.ads.kernels for the fallback story).
np = pytest.importorskip("numpy")

from repro.estimators.basic import (  # noqa: E402
    bottom_k_cardinality,
    k_mins_cardinality,
    k_partition_cardinality,
)
from repro.estimators.hip import bottom_k_adjusted_weights  # noqa: E402
from repro.eval.fig2 import (  # noqa: E402
    Fig2Config,
    PAPER_FIG2_PANELS,
    bottomk_basic_estimates,
    bottomk_hip_estimates,
    kmins_estimates,
    kpartition_estimates,
    permutation_estimates,
    run_figure2,
)


class TestFastPathsAgainstReference:
    """Feed identical rank data to the numpy fast paths and to the
    object-level estimators; results must match exactly."""

    def setup_method(self):
        self.rng = np.random.RandomState(42)
        self.n = 600
        self.k = 6
        self.checkpoints = [1, 3, 10, 50, 200, 600]

    def test_kmins(self):
        matrix = self.rng.random_sample((self.n, self.k))
        fast = kmins_estimates(matrix, self.checkpoints)
        for j, c in enumerate(self.checkpoints):
            minima = matrix[:c].min(axis=0)
            assert fast[j] == pytest.approx(
                k_mins_cardinality(list(minima))
            )

    def test_kpartition(self):
        ranks = self.rng.random_sample(self.n)
        buckets = self.rng.randint(0, self.k, size=self.n)
        fast = kpartition_estimates(ranks, buckets, self.k, self.checkpoints)
        for j, c in enumerate(self.checkpoints):
            minima = [1.0] * self.k
            argmin = [None] * self.k
            for i in range(c):
                b = int(buckets[i])
                if ranks[i] < minima[b]:
                    minima[b] = float(ranks[i])
                    argmin[b] = i
            assert fast[j] == pytest.approx(
                k_partition_cardinality(minima, argmin)
            )

    def test_bottomk_basic(self):
        ranks = self.rng.random_sample(self.n)
        fast = bottomk_basic_estimates(ranks, self.k, self.checkpoints)
        for j, c in enumerate(self.checkpoints):
            prefix = sorted(ranks[:c].tolist())
            if c < self.k:
                expected = float(c)
            else:
                expected = bottom_k_cardinality(
                    self.k, prefix[self.k - 1], self.k
                )
            assert fast[j] == pytest.approx(expected)

    def test_bottomk_hip(self):
        ranks = self.rng.random_sample(self.n)
        fast = bottomk_hip_estimates(ranks, self.k, self.checkpoints)
        # reference: explicit ADS entry extraction + library HIP weights
        import heapq

        heap, entry_ranks, entry_pos = [], [], []
        for i, r in enumerate(ranks.tolist(), start=1):
            if len(heap) < self.k:
                heapq.heappush(heap, -r)
                entry_ranks.append(r)
                entry_pos.append(i)
            elif r < -heap[0]:
                heapq.heapreplace(heap, -r)
                entry_ranks.append(r)
                entry_pos.append(i)
        weights = bottom_k_adjusted_weights(entry_ranks, self.k)
        for j, c in enumerate(self.checkpoints):
            expected = sum(
                w for w, pos in zip(weights, entry_pos) if pos <= c
            )
            assert fast[j] == pytest.approx(expected)

    def test_permutation_uses_library_class(self):
        sigma = self.rng.permutation(self.n) + 1
        fast = permutation_estimates(sigma, self.k, self.n, self.checkpoints)
        from repro.estimators.permutation import (
            PermutationCardinalityEstimator,
        )

        est = PermutationCardinalityEstimator(self.k, n=self.n)
        expected = {}
        for i, s in enumerate(sigma.tolist(), start=1):
            est.add_rank(int(s))
            if i in self.checkpoints:
                expected[i] = est.estimate()
        for j, c in enumerate(self.checkpoints):
            assert fast[j] == pytest.approx(expected[c])


class TestPanelShapes:
    @pytest.fixture(scope="class")
    def panel(self):
        return run_figure2(Fig2Config(k=10, runs=120, max_n=3000, seed=7))

    def test_bottomk_exact_below_k(self, panel):
        for c, value in zip(panel.checkpoints, panel.nrmse["bottomk_basic"]):
            if c < 10:
                assert value == 0.0

    def test_hip_beats_basic_at_large_n(self, panel):
        large = [
            j for j, c in enumerate(panel.checkpoints) if c >= 100
        ]
        hip = np.mean([panel.nrmse["bottomk_hip"][j] for j in large])
        basic = np.mean([panel.nrmse["bottomk_basic"][j] for j in large])
        assert hip < basic
        # the factor should be near sqrt(2) (Theorem 5.1)
        assert basic / hip == pytest.approx(math.sqrt(2), rel=0.35)

    def test_permutation_at_most_hip(self, panel):
        large = [j for j, c in enumerate(panel.checkpoints) if c >= 30]
        perm = np.mean([panel.nrmse["permutation"][j] for j in large])
        hip = np.mean([panel.nrmse["bottomk_hip"][j] for j in large])
        assert perm <= hip * 1.1

    def test_permutation_wins_big_near_n(self, panel):
        last = -1
        assert (
            panel.nrmse["permutation"][last]
            < 0.5 * panel.nrmse["bottomk_hip"][last]
        )

    def test_kpartition_worst_at_small_n(self, panel):
        small = [
            j
            for j, c in enumerate(panel.checkpoints)
            if 2 <= c <= 8
        ]
        kpart = np.mean([panel.nrmse["kpartition_basic"][j] for j in small])
        kmins = np.mean([panel.nrmse["kmins_basic"][j] for j in small])
        assert kpart > kmins

    def test_nrmse_near_reference_lines(self, panel):
        large = [j for j, c in enumerate(panel.checkpoints) if c >= 300]
        hip = np.mean([panel.nrmse["bottomk_hip"][j] for j in large])
        assert hip == pytest.approx(panel.references["hip_cv_ub"], rel=0.35)

    def test_mre_reported(self, panel):
        assert set(panel.mre) == set(panel.nrmse)
        for series in panel.mre.values():
            assert all(v >= 0 for v in series)

    def test_paper_panel_parameters_recorded(self):
        ks = [cfg.k for cfg in PAPER_FIG2_PANELS]
        runs = [cfg.runs for cfg in PAPER_FIG2_PANELS]
        max_ns = [cfg.max_n for cfg in PAPER_FIG2_PANELS]
        assert ks == [5, 10, 50]
        assert runs == [1000, 500, 250]
        assert max_ns == [10_000, 10_000, 50_000]
