"""Tests for the Figure 3 harness: the event-compressed simulation must
agree exactly with the object-level HyperLogLog / HIP counter pipeline."""

import math

import pytest

# repro.eval's fast paths are NumPy simulations; without the [fast]
# extra this whole module skips.
np = pytest.importorskip("numpy")

from repro.counters import HipDistinctCounter  # noqa: E402
from repro.eval.fig3 import (  # noqa: E402
    Fig3Config,
    PAPER_FIG3_PANELS,
    registers_from_uniform,
    run_figure3,
    simulate_run,
)
from repro.rand.hashing import HashFamily  # noqa: E402
from repro.sketches import HyperLogLog  # noqa: E402


class _ArrayFamily(HashFamily):
    """Hash family whose ranks/buckets replay prescribed arrays, so the
    object pipeline and the fast simulation see identical data."""

    def __init__(self, u, buckets):
        super().__init__(0)
        self.u = u
        self.buckets = buckets

    def rank(self, item, index: int = 0) -> float:
        return float(self.u[item])

    def bucket(self, item, k: int) -> int:
        return int(self.buckets[item])


class TestSimulationEquivalence:
    @pytest.mark.parametrize("k", [8, 16])
    def test_exact_agreement_with_objects(self, k):
        rng = np.random.RandomState(11)
        n = 4000
        u = rng.random_sample(n)
        buckets = rng.randint(0, k, size=n)
        checkpoints = [1, 2, 5, 17, 100, 999, 4000]
        h_values = registers_from_uniform(u, 31)
        fast = simulate_run(h_values, buckets, k, 31, checkpoints)

        family = _ArrayFamily(u, buckets)
        counter = HipDistinctCounter(HyperLogLog(k, family))
        expected = {"hll_raw": [], "hll": [], "hip": []}
        cp = set(checkpoints)
        for i in range(n):
            counter.add(i)
            if i + 1 in cp:
                expected["hll_raw"].append(counter.sketch.raw_estimate())
                expected["hll"].append(counter.sketch.estimate())
                expected["hip"].append(counter.estimate())
        for name in expected:
            assert list(fast[name]) == pytest.approx(expected[name])

    def test_registers_from_uniform_matches_algorithm3(self):
        # h(v) = min(31, ceil(-log2 r)) per Algorithm 3
        u = np.array([0.9, 0.5, 0.24, 1e-300])
        h = registers_from_uniform(u, 31)
        assert list(h) == [1, 1, 3, 31]

    def test_saturation_freezes_hip(self):
        rng = np.random.RandomState(3)
        n, k = 50_000, 4
        u = rng.random_sample(n)
        buckets = rng.randint(0, k, size=n)
        # 2-bit registers (max 3) saturate fast
        h_values = registers_from_uniform(u, 3)
        out = simulate_run(h_values, buckets, k, 3, [1000, n])
        assert out["hip"][1] == out["hip"][0]  # frozen after saturation
        assert math.isfinite(out["hip"][1])


class TestPanelShapes:
    @pytest.fixture(scope="class")
    def panel(self):
        return run_figure3(Fig3Config(k=16, runs=150, max_n=50_000, seed=5))

    def test_hip_beats_hll_at_large_n(self, panel):
        large = [j for j, c in enumerate(panel.checkpoints) if c >= 1000]
        hip = np.mean([panel.nrmse["hip"][j] for j in large])
        hll = np.mean([panel.nrmse["hll"][j] for j in large])
        assert hip < hll

    def test_hll_raw_terrible_at_small_n(self, panel):
        small = [j for j, c in enumerate(panel.checkpoints) if c <= 5]
        raw = np.mean([panel.nrmse["hll_raw"][j] for j in small])
        corrected = np.mean([panel.nrmse["hll"][j] for j in small])
        assert raw > 3 * corrected

    def test_hip_matches_analytic_line(self, panel):
        large = [j for j, c in enumerate(panel.checkpoints) if c >= 2000]
        hip = np.mean([panel.nrmse["hip"][j] for j in large])
        assert hip == pytest.approx(panel.references["hip_base2_cv"], rel=0.25)

    def test_hll_near_its_reference(self, panel):
        large = [j for j, c in enumerate(panel.checkpoints) if c >= 2000]
        hll = np.mean([panel.nrmse["hll"][j] for j in large])
        assert hll == pytest.approx(panel.references["hll_reference"], rel=0.3)

    def test_hip_unbiased_smooth(self, panel):
        # no bias bump: HIP NRMSE should be a smooth increasing-then-flat
        # curve; check no checkpoint deviates wildly from its neighbors
        series = panel.nrmse["hip"]
        for a, b in zip(series[5:], series[6:]):
            if a > 0.01:
                assert abs(b - a) / a < 0.8

    def test_paper_panel_parameters_recorded(self):
        assert [cfg.k for cfg in PAPER_FIG3_PANELS] == [16, 32, 64]
        assert [cfg.runs for cfg in PAPER_FIG3_PANELS] == [5000, 5000, 2000]
        assert all(cfg.max_n == 10**6 for cfg in PAPER_FIG3_PANELS)
        assert all(cfg.register_bits == 5 for cfg in PAPER_FIG3_PANELS)
