"""Tests for the lemma/constant validation tables and reporting."""


import pytest

# repro.eval.tables is a NumPy simulation harness; without the [fast]
# extra this whole module skips.
pytest.importorskip("numpy")

from repro.eval.metrics import (  # noqa: E402
    error_summary,
    mean_relative_error,
    nrmse,
    relative_bias,
)
from repro.eval.reporting import render_table  # noqa: E402
from repro.eval.tables import (  # noqa: E402
    ads_size_table,
    baseb_variance_table,
    distinct_counter_constants_table,
    morris_counter_table,
    qg_variance_table,
)
from repro.errors import ParameterError  # noqa: E402


class TestMetrics:
    def test_nrmse(self):
        assert nrmse([100, 100], 100) == 0.0
        assert nrmse([110, 90], 100) == pytest.approx(0.1)

    def test_mre(self):
        assert mean_relative_error([110, 90], 100) == pytest.approx(0.1)

    def test_bias(self):
        assert relative_bias([110, 90], 100) == 0.0
        assert relative_bias([120, 120], 100) == pytest.approx(0.2)

    def test_summary_keys(self):
        summary = error_summary([1.0, 2.0], 1.5)
        assert set(summary) == {"nrmse", "mre", "bias"}

    def test_validation(self):
        with pytest.raises(ParameterError):
            nrmse([], 10)
        with pytest.raises(ParameterError):
            nrmse([1.0], 0)


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            "Demo", "x", [1, 10], {"a": [0.5, 0.25], "b": [1.0, 2.0]}
        )
        assert "Demo" in text
        lines = text.strip().splitlines()
        assert len(lines) == 5  # title, rule, header, 2 rows
        assert "0.5000" in text

    def test_none_rendered_as_dash(self):
        text = render_table("t", "x", [1], {"a": [None]})
        assert "-" in text.splitlines()[-1]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table("t", "x", [1, 2], {"a": [1.0]})


class TestAdsSizeTable:
    def test_lemma22_within_tolerance(self):
        rows = ads_size_table([500, 2000], [4, 16], runs=120, seed=1)
        for row in rows:
            assert row["bottomk_measured"] == pytest.approx(
                row["bottomk_predicted"], rel=0.05
            )
            assert row["kpartition_measured"] == pytest.approx(
                row["kpartition_predicted"], rel=0.12
            )

    def test_bottomk_larger_than_kpartition(self):
        rows = ads_size_table([1000], [8], runs=60, seed=2)
        assert rows[0]["bottomk_measured"] > rows[0]["kpartition_measured"]


class TestConstantsTable:
    def test_hip_beats_hll_and_sqrt2_beats_base2(self):
        rows = distinct_counter_constants_table(
            [16], n=20_000, runs=60, seed=3
        )
        row = rows[0]
        assert row["hip_b2_nrmse_sqrtk"] < row["hll_nrmse_sqrtk"]
        assert row["hip_bsqrt2_nrmse_sqrtk"] < row["hip_b2_nrmse_sqrtk"] * 1.1

    def test_constants_near_paper(self):
        rows = distinct_counter_constants_table(
            [32], n=30_000, runs=80, seed=4
        )
        row = rows[0]
        assert row["hip_b2_nrmse_sqrtk"] == pytest.approx(0.87, rel=0.25)


class TestBaseBTable:
    def test_variance_factor(self):
        rows = baseb_variance_table(
            16, [1.0, 2.0], n=5_000, runs=80, seed=5
        )
        full = rows[0]
        base2 = rows[1]
        assert full["measured_cv"] == pytest.approx(
            full["predicted_cv"], rel=0.3
        )
        assert base2["measured_cv"] == pytest.approx(
            base2["predicted_cv"], rel=0.3
        )
        assert base2["measured_cv"] > full["measured_cv"]


class TestMorrisTable:
    def test_unbiased_and_base_scaling(self):
        rows = morris_counter_table([1.1, 2.0], total=2_000, runs=150, seed=6)
        for row in rows:
            assert abs(row["unit_bias"]) < 0.1
            assert abs(row["weighted_bias"]) < 0.1
        assert rows[0]["unit_cv"] < rows[1]["unit_cv"]


class TestQgTable:
    def test_hip_beats_naive_for_concentrated_g(self):
        from repro.graph import barabasi_albert_graph
        from repro.graph.properties import closeness_centrality_exact

        graph = barabasi_albert_graph(150, 3, seed=2)
        g = lambda node, d: 2.0 ** (-d)
        exact = {
            v: closeness_centrality_exact(graph, v, alpha=lambda d: 2.0 ** (-d))
            + 1.0  # include the source term g(v,0)=1
            for v in list(graph.nodes())[:10]
        }
        result = qg_variance_table(
            graph,
            k=8,
            g=g,
            exact_fn=lambda v: exact[v],
            node_sample=list(exact),
            seeds=range(12),
        )
        assert result["hip_nrmse"] < result["naive_nrmse"]
        assert result["variance_ratio"] > 1.5
