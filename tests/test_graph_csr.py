"""CSR backend: interning, construction, views, traversal equivalence."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graph import (
    CSRGraph,
    Graph,
    NodeInterner,
    barabasi_albert_graph,
    bfs_distances,
    dijkstra_distances,
    gnp_random_graph,
    random_geometric_graph,
)
from repro.graph.csr import csr_bfs_distance_list, csr_dijkstra_distance_list
from repro.graph.traversal import single_source_distances


class TestNodeInterner:
    def test_dense_first_seen_ids(self):
        interner = NodeInterner()
        assert interner.intern("b") == 0
        assert interner.intern("a") == 1
        assert interner.intern("b") == 0  # idempotent
        assert interner.id_of("a") == 1
        assert interner.label_of(0) == "b"
        assert interner.labels() == ["b", "a"]
        assert len(interner) == 2 and "a" in interner and "z" not in interner

    def test_unknown_lookups_raise(self):
        interner = NodeInterner(["x"])
        with pytest.raises(GraphError):
            interner.id_of("y")
        with pytest.raises(GraphError):
            interner.label_of(5)


class TestConstruction:
    def test_from_edges_matches_graph_semantics(self):
        edges = [("a", "b", 2.0), ("b", "c"), ("a", "b", 1.0), ("c", "a", 3.0)]
        csr = CSRGraph.from_edges(edges, directed=True)
        ref = Graph.from_edges(edges, directed=True)
        assert csr.num_nodes == ref.num_nodes
        assert csr.num_edges == ref.num_edges
        assert csr.edge_weight("a", "b") == 1.0  # parallel edge keeps min
        assert sorted(map(repr, csr.edges())) == sorted(map(repr, ref.edges()))

    def test_rejects_self_loops_and_bad_weights(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges([("a", "a")])
        with pytest.raises(GraphError):
            CSRGraph.from_edges([("a", "b", 0.0)])
        with pytest.raises(GraphError):
            CSRGraph.from_edges([("a", "b", 1.0, 2.0)])

    def test_to_csr_preserves_insertion_order_ids(self):
        graph = Graph(directed=True)
        graph.add_edge("z", "y")
        graph.add_edge("y", "x")
        graph.add_node("iso")
        csr = graph.to_csr()
        assert csr.nodes() == graph.nodes()
        assert csr.interner.id_of("z") == 0
        assert csr.has_node("iso") and csr.out_degree("iso") == 0

    def test_roundtrip_to_graph(self):
        graph = random_geometric_graph(40, 0.3, seed=1)
        back = graph.to_csr().to_graph()
        assert sorted(map(repr, back.edges())) == sorted(map(repr, graph.edges()))
        assert back.directed == graph.directed

    def test_unweighted_graph_drops_weight_column(self):
        csr = barabasi_albert_graph(30, 2, seed=0).to_csr()
        assert not csr.is_weighted()
        assert csr.forward_arrays()[2] is None
        assert csr.edge_weight(*list(csr.edges())[0][:2]) == 1.0


class TestViews:
    def test_transpose_is_an_array_swap(self):
        csr = gnp_random_graph(30, 0.1, seed=4, directed=True).to_csr()
        t = csr.transpose()
        assert t.forward_arrays() == csr.transpose_arrays()
        assert t.transpose_arrays() == csr.forward_arrays()
        node = csr.nodes()[5]
        assert sorted(t.out_neighbors(node)) == sorted(csr.in_neighbors(node))

    def test_undirected_shares_forward_and_transpose(self):
        csr = barabasi_albert_graph(20, 2, seed=1).to_csr()
        fwd, tr = csr.forward_arrays(), csr.transpose_arrays()
        assert fwd[0] is tr[0] and fwd[1] is tr[1]

    def test_degrees_match_legacy(self):
        ref = gnp_random_graph(40, 0.1, seed=7, directed=True)
        csr = ref.to_csr()
        for u in ref.nodes():
            assert csr.out_degree(u) == ref.out_degree(u)
            assert csr.in_degree(u) == ref.in_degree(u)


class TestTraversal:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_bfs_equivalence(self, seed):
        ref = gnp_random_graph(50, 0.07, seed=seed, directed=seed % 2 == 0)
        csr = ref.to_csr()
        for source in list(ref.nodes())[:8]:
            assert bfs_distances(csr, source) == bfs_distances(ref, source)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_dijkstra_equivalence(self, seed):
        ref = random_geometric_graph(40, 0.25, seed=seed)
        csr = ref.to_csr()
        for source in list(ref.nodes())[:8]:
            assert dijkstra_distances(csr, source) == dijkstra_distances(
                ref, source
            )

    def test_single_source_dispatch(self):
        ref = barabasi_albert_graph(30, 2, seed=2)
        csr = ref.to_csr()
        source = ref.nodes()[0]
        assert single_source_distances(csr, source) == single_source_distances(
            ref, source
        )

    def test_distance_lists_mark_unreachable_with_inf(self):
        csr = CSRGraph.from_edges([("a", "b")], directed=True, nodes=["a", "b", "c"])
        hops = csr_bfs_distance_list(csr, 0)
        assert hops == [0.0, 1.0, math.inf]
        weighted = CSRGraph.from_edges(
            [("a", "b", 2.5)], directed=True, nodes=["a", "b", "c"]
        )
        dist = csr_dijkstra_distance_list(weighted, 0)
        assert dist == [0.0, 2.5, math.inf]

    def test_missing_source_raises(self):
        csr = CSRGraph.from_edges([("a", "b")])
        with pytest.raises(GraphError):
            bfs_distances(csr, "nope")
