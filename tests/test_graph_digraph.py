"""Tests for the core Graph data structure."""

import pytest

from repro.errors import GraphError
from repro.graph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert not g.directed

    def test_add_edge_creates_nodes(self):
        g = Graph()
        g.add_edge("a", "b", 2.0)
        assert g.has_node("a") and g.has_node("b")
        assert g.num_edges == 1
        assert g.edge_weight("a", "b") == 2.0

    def test_undirected_symmetry(self):
        g = Graph()
        g.add_edge(1, 2, 3.0)
        assert g.has_edge(2, 1)
        assert g.edge_weight(2, 1) == 3.0
        assert g.num_edges == 1  # counted once

    def test_directed_asymmetry(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)
        assert g.in_degree(2) == 1
        assert g.out_degree(2) == 0

    def test_readd_edge_keeps_smaller_weight(self):
        g = Graph(directed=True)
        g.add_edge(1, 2, 5.0)
        g.add_edge(1, 2, 3.0)
        assert g.edge_weight(1, 2) == 3.0
        g.add_edge(1, 2, 9.0)
        assert g.edge_weight(1, 2) == 3.0
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_nonpositive_weight_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(1, 2, 0.0)
        with pytest.raises(GraphError):
            g.add_edge(1, 2, -1.0)

    def test_from_edges(self):
        g = Graph.from_edges([(1, 2), (2, 3, 4.0)], directed=True)
        assert g.num_edges == 2
        assert g.edge_weight(2, 3) == 4.0
        with pytest.raises(GraphError):
            Graph.from_edges([(1,)])

    def test_isolated_node(self):
        g = Graph()
        g.add_node("solo")
        assert g.has_node("solo")
        assert g.out_degree("solo") == 0


class TestQueries:
    def test_edges_iteration_undirected_once(self):
        g = Graph.from_edges([(1, 2), (2, 3), (1, 3)])
        assert len(list(g.edges())) == 3

    def test_edges_iteration_directed_both(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert len(list(g.edges())) == 2

    def test_edges_dedup_survives_repr_collisions(self):
        class Opaque:
            """Distinct nodes whose reprs collide."""

            def __repr__(self):
                return "<opaque>"

        a, b, c = Opaque(), Opaque(), Opaque()
        g = Graph.from_edges([(a, b), (b, c), (a, c)])
        assert len(list(g.edges())) == 3
        # every undirected edge appears exactly once, as objects
        seen = {frozenset({id(u), id(v)}) for u, v, _ in g.edges()}
        assert len(seen) == 3

    def test_edges_yield_each_undirected_edge_once_on_larger_graph(self):
        from repro.graph import gnp_random_graph

        g = gnp_random_graph(40, 0.2, seed=6)
        edges = list(g.edges())
        assert len(edges) == g.num_edges
        assert len({frozenset({u, v}) for u, v, _ in edges}) == g.num_edges

    def test_neighbors(self):
        g = Graph(directed=True)
        g.add_edge(1, 2, 1.0)
        g.add_edge(3, 2, 2.0)
        assert g.out_neighbors(1) == [(2, 1.0)]
        assert sorted(g.in_neighbors(2)) == [(1, 1.0), (3, 2.0)]

    def test_missing_node_raises(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.out_neighbors("ghost")
        with pytest.raises(GraphError):
            g.edge_weight(1, 2)

    def test_is_weighted(self):
        g = Graph.from_edges([(1, 2), (2, 3)])
        assert not g.is_weighted()
        g.add_edge(3, 4, 2.5)
        assert g.is_weighted()

    def test_contains(self):
        g = Graph.from_edges([(1, 2)])
        assert 1 in g
        assert 9 not in g


class TestDerived:
    def test_transpose_directed(self):
        g = Graph(directed=True)
        g.add_edge("a", "b", 2.0)
        g.add_node("solo")
        t = g.transpose()
        assert t.has_edge("b", "a")
        assert not t.has_edge("a", "b")
        assert t.has_node("solo")
        assert t.edge_weight("b", "a") == 2.0

    def test_transpose_undirected_is_copy(self):
        g = Graph.from_edges([(1, 2)])
        t = g.transpose()
        assert t.has_edge(1, 2) and t.has_edge(2, 1)
        t.add_edge(2, 3)
        assert not g.has_edge(2, 3)  # independent copy

    def test_copy_independent(self):
        g = Graph.from_edges([(1, 2)])
        c = g.copy()
        c.add_edge(2, 3)
        assert g.num_edges == 1
        assert c.num_edges == 2

    def test_repr(self):
        g = Graph.from_edges([(1, 2)], directed=True)
        assert "directed" in repr(g)
        assert "n=2" in repr(g)
