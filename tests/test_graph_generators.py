"""Tests for graph generators, including the paper's Figure 1 graph."""

import math

import pytest

from repro.errors import ParameterError
from repro.graph import (
    barabasi_albert_graph,
    complete_graph,
    cycle_graph,
    figure1_graph,
    figure1_ranks,
    gnp_random_graph,
    grid_graph,
    path_graph,
    random_geometric_graph,
    random_tree,
    star_graph,
)
from repro.graph.traversal import dijkstra_distances


class TestDeterministicShapes:
    def test_path(self):
        g = path_graph(6)
        assert g.num_nodes == 6 and g.num_edges == 5

    def test_cycle(self):
        g = cycle_graph(7)
        assert g.num_nodes == 7 and g.num_edges == 7
        assert all(g.out_degree(v) == 2 for v in g.nodes())

    def test_star(self):
        g = star_graph(9)
        assert g.out_degree(0) == 8

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            path_graph(0)
        with pytest.raises(ParameterError):
            cycle_graph(2)
        with pytest.raises(ParameterError):
            barabasi_albert_graph(3, 3)


class TestRandomGenerators:
    def test_gnp_seeded_reproducible(self):
        a = gnp_random_graph(100, 0.05, seed=7)
        b = gnp_random_graph(100, 0.05, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_gnp_edge_count_near_expectation(self):
        n, p = 300, 0.03
        g = gnp_random_graph(n, p, seed=11)
        expected = p * n * (n - 1) / 2
        assert abs(g.num_edges - expected) < 5 * math.sqrt(expected)

    def test_gnp_extremes(self):
        assert gnp_random_graph(10, 0.0, seed=0).num_edges == 0
        assert gnp_random_graph(6, 1.0, seed=0).num_edges == 15
        directed = gnp_random_graph(6, 1.0, seed=0, directed=True)
        assert directed.num_edges == 30

    def test_gnp_directed_no_self_loops(self):
        g = gnp_random_graph(50, 0.2, seed=3, directed=True)
        assert all(u != v for u, v, _ in g.edges())

    def test_barabasi_albert_degrees(self):
        g = barabasi_albert_graph(200, 3, seed=1)
        assert g.num_nodes == 200
        assert all(g.out_degree(v) >= 3 for v in g.nodes())
        # heavy tail: some hub should be much larger than m
        assert max(g.out_degree(v) for v in g.nodes()) > 12

    def test_random_tree_is_tree(self):
        g = random_tree(50, seed=2)
        assert g.num_edges == 49
        assert len(dijkstra_distances(g, 0)) == 50  # connected

    def test_geometric_weights_are_distances(self):
        g = random_geometric_graph(40, 0.4, seed=5)
        for _, _, w in g.edges():
            assert 0.0 < w <= 0.4


class TestFigure1:
    def test_forward_distances_from_a(self):
        g = figure1_graph()
        expected = dict(zip("abcdefgh", (0, 8, 9, 18, 19, 20, 21, 26)))
        assert {
            v: int(d) for v, d in dijkstra_distances(g, "a").items()
        } == expected

    def test_reverse_distances_to_b(self):
        g = figure1_graph()
        expected = dict(zip("bagchdef", (0, 8, 18, 30, 31, 39, 40, 41)))
        assert {
            v: int(d) for v, d in dijkstra_distances(g.transpose(), "b").items()
        } == expected

    def test_rank_multiset_matches_figure(self):
        ranks = figure1_ranks()
        assert sorted(ranks.values()) == pytest.approx(
            [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
        )

    def test_rank_constraints_from_example(self):
        r = figure1_ranks()
        assert r["h"] < r["d"] < r["f"] < r["c"] < r["a"] < r["b"]
        assert r["e"] > r["c"]
        assert r["g"] > r["a"]
