"""Round-trip tests for edge-list IO."""

import pytest

from repro.errors import GraphError
from repro.graph import Graph, read_edge_list, write_edge_list
from repro.graph.generators import gnp_random_graph, random_geometric_graph


def _canon(graph):
    def norm(u, v, w):
        if not graph.directed and repr(v) < repr(u):
            return (v, u, w)
        return (u, v, w)

    return (
        graph.directed,
        sorted(graph.nodes()),
        sorted(norm(u, v, w) for u, v, w in graph.edges()),
    )


class TestRoundTrip:
    def test_unweighted_undirected(self, tmp_path):
        g = gnp_random_graph(40, 0.1, seed=1)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        back = read_edge_list(path, node_type=int)
        assert _canon(back) == _canon(g)

    def test_weighted_directed(self, tmp_path):
        g = Graph(directed=True)
        g.add_edge("a", "b", 2.5)
        g.add_edge("b", "c", 0.125)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.directed
        assert back.edge_weight("a", "b") == 2.5
        assert back.edge_weight("b", "c") == 0.125

    def test_float_weights_roundtrip_exactly(self, tmp_path):
        g = random_geometric_graph(30, 0.4, seed=2)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        back = read_edge_list(path, node_type=int)
        for u, v, w in g.edges():
            assert back.edge_weight(u, v) == w  # repr round-trip is exact

    def test_isolated_nodes_preserved(self, tmp_path):
        g = Graph()
        g.add_edge(1, 2)
        g.add_node(7)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        back = read_edge_list(path, node_type=int)
        assert back.has_node(7)
        assert back.num_nodes == 3

    def test_directed_override(self, tmp_path):
        g = Graph()
        g.add_edge(1, 2)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        forced = read_edge_list(path, directed=True, node_type=int)
        assert forced.directed

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3 4\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n\n1 2\n")
        g = read_edge_list(path, node_type=int)
        assert g.num_edges == 1
