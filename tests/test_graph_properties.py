"""Tests for exact graph statistics (the estimator ground truths)."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graph.properties import (
    closeness_centrality_exact,
    distance_distribution,
    effective_diameter,
    exact_neighborhood_function,
    graph_diameter,
    harmonic_centrality_exact,
    neighborhood_cardinality,
    reachable_set,
)


class TestNeighborhoodCardinality:
    def test_path_graph(self):
        g = path_graph(10)
        assert neighborhood_cardinality(g, 0, 0) == 1
        assert neighborhood_cardinality(g, 0, 3) == 4
        assert neighborhood_cardinality(g, 5, 2) == 5  # both directions

    def test_star_center_vs_leaf(self):
        g = star_graph(11)
        assert neighborhood_cardinality(g, 0, 1) == 11
        assert neighborhood_cardinality(g, 1, 1) == 2
        assert neighborhood_cardinality(g, 1, 2) == 11


class TestNeighborhoodFunction:
    def test_cumulative_and_sorted(self):
        g = cycle_graph(9)
        nf = exact_neighborhood_function(g, 0)
        distances = [d for d, _ in nf]
        counts = [c for _, c in nf]
        assert distances == sorted(distances)
        assert counts == sorted(counts)
        assert counts[-1] == 9

    def test_counts_match_cardinality_queries(self):
        g = path_graph(8)
        for d, count in exact_neighborhood_function(g, 2):
            assert count == neighborhood_cardinality(g, 2, d)


class TestDistanceDistribution:
    def test_complete_graph(self):
        g = complete_graph(5)
        assert distance_distribution(g) == [(1.0, 20)]  # all ordered pairs

    def test_path_graph_totals(self):
        g = path_graph(4)
        dist = distance_distribution(g)
        assert dist[-1][1] == 12  # 4*3 ordered pairs, all connected

    def test_directed_counts_ordered_pairs(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        assert distance_distribution(g) == [(1.0, 1)]


class TestDiameters:
    def test_graph_diameter(self):
        assert graph_diameter(path_graph(6)) == 5.0
        assert graph_diameter(complete_graph(4)) == 1.0

    def test_effective_diameter_bounds(self):
        g = path_graph(20)
        eff = effective_diameter(g, 0.9)
        assert 0 < eff <= graph_diameter(g)
        assert effective_diameter(g, 1.0) == graph_diameter(g)

    def test_effective_diameter_invalid_quantile(self):
        with pytest.raises(GraphError):
            effective_diameter(path_graph(3), 0.0)


class TestCentralities:
    def test_sum_of_distances_on_path(self):
        g = path_graph(5)
        # node 0: distances 1+2+3+4 = 10
        assert closeness_centrality_exact(g, 0) == 10.0
        # center node 2: 2+1+1+2 = 6
        assert closeness_centrality_exact(g, 2) == 6.0

    def test_harmonic_on_star_center(self):
        g = star_graph(6)
        assert harmonic_centrality_exact(g, 0) == pytest.approx(5.0)
        # leaf: 1 + 4 * (1/2)
        assert harmonic_centrality_exact(g, 1) == pytest.approx(3.0)

    def test_alpha_beta_filtering(self):
        g = star_graph(5)
        # beta selects only even-numbered leaves (2 and 4)
        value = closeness_centrality_exact(
            g, 0, alpha=lambda d: 1.0, beta=lambda v: 1.0 if v % 2 == 0 else 0.0
        )
        assert value == 2.0

    def test_reachable_set_directed(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_edge(3, 1)
        assert reachable_set(g, 1) == {1, 2}
        assert reachable_set(g, 3) == {1, 2, 3}
