"""Tests for BFS / Dijkstra / Bellman-Ford and the Dijkstra-rank order."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graph import Graph, gnp_random_graph, path_graph
from repro.graph.traversal import (
    bellman_ford_distances,
    bfs_distances,
    dijkstra_distances,
    dijkstra_order,
    dijkstra_ranks,
    single_source_distances,
)


class TestBFS:
    def test_path_graph(self):
        g = path_graph(5)
        assert bfs_distances(g, 0) == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}

    def test_unreachable_excluded(self):
        g = Graph(directed=True)
        g.add_edge(1, 2)
        g.add_node(3)
        dist = bfs_distances(g, 1)
        assert 3 not in dist

    def test_missing_source(self):
        with pytest.raises(GraphError):
            bfs_distances(Graph(), "nope")


class TestDijkstra:
    def test_weighted_shortcut(self):
        g = Graph(directed=True)
        g.add_edge("s", "a", 10.0)
        g.add_edge("s", "b", 1.0)
        g.add_edge("b", "a", 2.0)
        assert dijkstra_distances(g, "s")["a"] == 3.0

    def test_matches_bfs_on_unweighted(self):
        g = gnp_random_graph(60, 0.08, seed=1)
        assert dijkstra_distances(g, 0) == bfs_distances(g, 0)

    def test_order_nondecreasing(self):
        g = gnp_random_graph(80, 0.06, seed=4)
        distances = [d for _, d in dijkstra_order(g, 0)]
        assert distances == sorted(distances)

    def test_tiebreak_makes_total_order(self):
        g = path_graph(3)
        g.add_edge(0, 10)  # node 10 also at distance 1
        order_a = [n for n, _ in dijkstra_order(g, 0, tiebreak=lambda x: x)]
        order_b = [n for n, _ in dijkstra_order(g, 0, tiebreak=lambda x: -x)]
        assert order_a != order_b
        assert set(order_a) == set(order_b)


class TestBellmanFord:
    def test_matches_dijkstra_random_weighted(self):
        rng = random.Random(7)
        g = Graph(directed=True)
        for _ in range(200):
            u, v = rng.randrange(40), rng.randrange(40)
            if u != v:
                g.add_edge(u, v, rng.uniform(0.1, 5.0))
        for source in list(g.nodes())[:5]:
            assert bellman_ford_distances(g, source) == pytest.approx(
                dijkstra_distances(g, source)
            )

    def test_max_rounds_truncates(self):
        g = path_graph(10, directed=True)
        dist = bellman_ford_distances(g, 0, max_rounds=3)
        assert max(dist.values()) == 3.0


class TestSingleSource:
    def test_dispatch(self):
        unweighted = path_graph(4)
        weighted = Graph.from_edges([(0, 1, 2.0)])
        assert single_source_distances(unweighted, 0)[3] == 3.0
        assert single_source_distances(weighted, 0)[1] == 2.0


class TestDijkstraRanks:
    def test_source_has_rank_one(self):
        g = gnp_random_graph(50, 0.1, seed=9)
        ranks = dijkstra_ranks(g, 0)
        assert ranks[0] == 1
        assert sorted(ranks.values()) == list(range(1, len(ranks) + 1))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_dijkstra_bfs_agree_property(seed):
    g = gnp_random_graph(40, 0.1, seed=seed)
    assert dijkstra_distances(g, 0) == bfs_distances(g, 0)
