"""Tests for the deterministic hashing substrate."""

import statistics

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.rand.hashing import HashFamily, bucket_of, hash64, unit_interval_hash


class TestHash64:
    def test_deterministic(self):
        assert hash64(42, 7) == hash64(42, 7)
        assert hash64("node-a", 7) == hash64("node-a", 7)

    def test_seed_sensitivity(self):
        assert hash64(42, 1) != hash64(42, 2)

    def test_item_sensitivity(self):
        assert hash64(1, 0) != hash64(2, 0)

    def test_string_and_bytes_stable(self):
        assert hash64("abc", 5) == hash64("abc", 5)
        assert hash64(b"abc", 5) == hash64(b"abc", 5)
        # str and bytes hash alike (same payload) but differ from ints.
        assert hash64("abc", 5) == hash64(b"abc", 5)

    def test_tuple_items_supported(self):
        assert hash64((1, 2), 0) == hash64((1, 2), 0)
        assert hash64((1, 2), 0) != hash64((2, 1), 0)

    def test_64_bit_range(self):
        for item in range(100):
            value = hash64(item, 3)
            assert 0 <= value < 2**64


class TestUnitIntervalHash:
    def test_open_interval(self):
        values = [unit_interval_hash(i, 9) for i in range(10_000)]
        assert all(0.0 < v < 1.0 for v in values)

    def test_uniform_mean_and_spread(self):
        values = [unit_interval_hash(i, 11) for i in range(50_000)]
        assert statistics.mean(values) == pytest.approx(0.5, abs=0.01)
        assert min(values) < 0.001
        assert max(values) > 0.999

    def test_independence_across_seeds(self):
        a = [unit_interval_hash(i, 0) for i in range(20_000)]
        b = [unit_interval_hash(i, 1) for i in range(20_000)]
        mean_a = statistics.mean(a)
        mean_b = statistics.mean(b)
        covariance = statistics.mean(
            (x - mean_a) * (y - mean_b) for x, y in zip(a, b)
        )
        assert abs(covariance) < 0.005  # ~uncorrelated


class TestBucketOf:
    def test_range(self):
        for i in range(1000):
            assert 0 <= bucket_of(i, 7) < 7

    def test_roughly_uniform(self):
        counts = [0] * 8
        for i in range(80_000):
            counts[bucket_of(i, 8, seed=13)] += 1
        for c in counts:
            assert abs(c - 10_000) < 600  # ~5 sigma

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            bucket_of(1, 0)


class TestHashFamily:
    def test_equality_and_hash(self):
        assert HashFamily(3) == HashFamily(3)
        assert HashFamily(3) != HashFamily(4)
        assert hash(HashFamily(3)) == hash(HashFamily(3))

    def test_rank_independence_across_indices(self):
        fam = HashFamily(5)
        a = [fam.rank(i, 0) for i in range(20_000)]
        b = [fam.rank(i, 1) for i in range(20_000)]
        assert a != b
        agree = sum(1 for x, y in zip(a, b) if abs(x - y) < 1e-3)
        assert agree < 100  # essentially independent streams

    def test_tiebreak_differs_from_rank_stream(self):
        fam = HashFamily(5)
        # Tiebreaks must not be ordered like ranks (independence matters
        # for estimator unbiasedness).
        items = list(range(2000))
        by_rank = sorted(items, key=lambda i: fam.rank(i))
        by_tb = sorted(items, key=fam.tiebreak)
        agreements = sum(1 for a, b in zip(by_rank, by_tb) if a == b)
        assert agreements < 10

    @given(st.integers(min_value=0, max_value=2**63))
    def test_rank_in_open_unit_interval(self, item):
        fam = HashFamily(1)
        assert 0.0 < fam.rank(item) < 1.0
