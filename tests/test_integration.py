"""End-to-end integration tests across subpackages."""


import pytest

from repro import (
    BottomKSketch,
    HashFamily,
    HipDistinctCounter,
    HyperLogLog,
    build_ads_set,
)
from repro.centrality import all_closeness_centralities, top_k_central_nodes
from repro.graph import barabasi_albert_graph, gnp_random_graph
from repro.graph.properties import (
    closeness_centrality_exact,
    neighborhood_cardinality,
    reachable_set,
)
from repro.sketches import jaccard_estimate
from repro.streams import zipf_stream


class TestGraphPipeline:
    def test_social_network_analysis_end_to_end(self):
        """The full intended workflow: build one ADS set, answer many
        different queries from it, all close to exact values."""
        graph = barabasi_albert_graph(250, 3, seed=1)
        family = HashFamily(99)
        ads_set = build_ads_set(graph, 32, family=family)

        # 1. neighborhood cardinalities
        v = 77
        for d in (1.0, 2.0, 3.0):
            exact = neighborhood_cardinality(graph, v, d)
            assert ads_set[v].cardinality_at(d) == pytest.approx(
                exact, rel=0.35
            )

        # 2. reachability
        assert ads_set[v].reachable_count() == pytest.approx(
            len(reachable_set(graph, v)), rel=0.3
        )

        # 3. centrality ranking: ADS top-10 overlaps exact top-10
        estimated = all_closeness_centralities(ads_set, classic=True)
        exact = {
            u: (graph.num_nodes - 1) / closeness_centrality_exact(graph, u)
            for u in graph.nodes()
        }
        top_est = {u for u, _ in top_k_central_nodes(estimated, 10)}
        top_true = {
            u
            for u, _ in sorted(
                exact.items(), key=lambda kv: -kv[1]
            )[:10]
        }
        assert len(top_est & top_true) >= 5

    def test_coordinated_ads_enables_similarity(self):
        """Neighborhood similarity from coordinated sketches ([11], intro):
        extract MinHash sketches of two nodes' d-neighborhoods from their
        ADSs and estimate Jaccard similarity."""
        graph = gnp_random_graph(150, 0.05, seed=3)
        family = HashFamily(5)
        k = 16
        ads_set = build_ads_set(graph, k, family=family)
        from repro.graph.traversal import bfs_distances

        u, v = 0, 1
        sketch_u = ads_set[u].minhash_at(2.0)
        sketch_v = ads_set[v].minhash_at(2.0)
        # rebuild sketch objects for the similarity estimator
        a = BottomKSketch(k, family)
        b = BottomKSketch(k, family)
        a.update(node for _, node in sketch_u)
        b.update(node for _, node in sketch_v)
        estimated = jaccard_estimate(a, b)
        nu = {x for x, d in bfs_distances(graph, u).items() if d <= 2.0}
        nv = {x for x, d in bfs_distances(graph, v).items() if d <= 2.0}
        true = len(nu & nv) / len(nu | nv)
        assert estimated == pytest.approx(true, abs=0.35)

    def test_backward_ads_estimates_in_neighborhoods(self):
        graph = gnp_random_graph(150, 0.03, seed=9, directed=True)
        family = HashFamily(17)
        ads_set = build_ads_set(graph, 16, family=family, direction="backward")
        transpose = graph.transpose()
        v = 3
        exact = neighborhood_cardinality(transpose, v, 2.0)
        assert ads_set[v].cardinality_at(2.0) == pytest.approx(exact, rel=0.5)


class TestStreamPipeline:
    def test_distinct_counting_with_repeats(self):
        stream = zipf_stream(5_000, 40_000, seed=8)
        counter = HipDistinctCounter(HyperLogLog(64, HashFamily(21)))
        counter.update(stream)
        assert counter.estimate() == pytest.approx(5_000, rel=0.25)

    def test_hll_and_hip_from_same_pass(self):
        stream = zipf_stream(2_000, 10_000, seed=4)
        counter = HipDistinctCounter(HyperLogLog(32, HashFamily(2)))
        counter.update(stream)
        hip = counter.estimate()
        hll = counter.sketch.estimate()
        assert hip == pytest.approx(2_000, rel=0.4)
        assert hll == pytest.approx(2_000, rel=0.4)

    def test_mergeable_sketches_coordinate(self):
        family = HashFamily(7)
        a = HyperLogLog(32, family)
        b = HyperLogLog(32, family)
        a.update(range(0, 3000))
        b.update(range(2000, 6000))
        a.merge(b)
        assert a.estimate() == pytest.approx(6000, rel=0.3)
