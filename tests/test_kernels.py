"""Kernel-equivalence property suite (repro.ads.kernels).

The acceptance bar mirrors the package contract: the NumPy kernel must
agree with the pure reference loops *exactly* for cum-hip columns and
cardinality estimates, and to <= 1e-9 relative error for aggregated
closeness/neighborhood sums -- across all three sketch flavors, both
persisted layouts (eager and memory-mapped loads), and weighted and
unweighted graphs.  Alongside live the backend-selection rules
(explicit argument, REPRO_BACKEND, forced fallback with the NumPy
import blocked) and the heap-selection contract of
``top_k_central_nodes``.

Every NumPy-dependent test skips cleanly when NumPy is missing, so the
suite passes identically on a pure-Python deployment.
"""

import math
import os
import random
import sys

import pytest

from repro.ads import AdsIndex, kernels
from repro.ads.kernels import parallel as kernel_parallel
from repro.ads.kernels import pure
from repro.errors import EstimatorError, ParameterError
from repro.estimators.statistics import (
    exponential_decay_kernel,
    harmonic_kernel,
)
from repro.centrality.closeness import top_k_central_nodes
from repro.graph import gnp_random_graph, random_geometric_graph
from repro.graph.csr import CSRGraph
from repro.rand.hashing import HashFamily

FLAVORS = ("bottomk", "kmins", "kpartition")
STORAGES = ("eager", "mmap-single", "mmap-sharded")

requires_numpy = pytest.mark.skipif(
    not kernels.numpy_available(), reason="NumPy not installed"
)


def _graph(weighted: bool):
    if weighted:
        return random_geometric_graph(40, 0.35, seed=11).to_csr()
    return gnp_random_graph(48, 0.09, seed=5).to_csr()


def _index_pair(flavor, weighted, storage, tmp_path, k=4):
    """The same persisted sketch set loaded on both backends."""
    graph = _graph(weighted)
    built = AdsIndex.build(
        graph, k, family=HashFamily(99), flavor=flavor, backend="python"
    )
    if storage == "eager":
        destination = tmp_path / "kernel-eq.adsidx"
        built.save(destination)
        load = lambda backend: AdsIndex.load(  # noqa: E731
            destination, backend=backend
        )
    else:
        if storage == "mmap-single":
            destination = tmp_path / "kernel-eq.adsidx"
            built.save(destination)
        else:
            destination = tmp_path / "kernel-eq-sharded"
            built.save(destination, shards=3)
        load = lambda backend: AdsIndex.load(  # noqa: E731
            destination, mmap=True, backend=backend
        )
    return load("python"), load("numpy")


def _approx(reference, candidate):
    assert candidate == pytest.approx(reference, rel=1e-9, abs=1e-12)


@requires_numpy
@pytest.mark.parametrize("storage", STORAGES)
@pytest.mark.parametrize("weighted", (False, True))
@pytest.mark.parametrize("flavor", FLAVORS)
class TestBackendEquivalence:
    def test_cum_hip_and_cardinality_exact(
        self, flavor, weighted, storage, tmp_path
    ):
        py, np_ = _index_pair(flavor, weighted, storage, tmp_path)
        assert py.backend == "python" and np_.backend == "numpy"
        assert bytes(py._cum_hip) == bytes(np_._cum_hip)
        for d in (0.0, 0.4, 1.0, 2.5, math.inf):
            assert py.cardinality_at(d) == np_.cardinality_at(d)
        for label in list(py.nodes())[:5]:
            assert py.node_cardinality_at(label, 1.5) == \
                np_.node_cardinality_at(label, 1.5)

    def test_closeness_all_kinds(self, flavor, weighted, storage, tmp_path):
        py, np_ = _index_pair(flavor, weighted, storage, tmp_path)
        kind_kwargs = (
            {"classic": True},
            {},  # raw sum of distances
            {"alpha": harmonic_kernel()},
            {"alpha": exponential_decay_kernel(2.0)},
            {"beta": lambda node: 1.5 if node % 2 else 0.5},
        )
        for kwargs in kind_kwargs:
            reference = py.closeness_centrality(**kwargs)
            candidate = np_.closeness_centrality(**kwargs)
            assert list(reference) == list(candidate)
            _approx(list(reference.values()), list(candidate.values()))

    def test_neighborhood_function(self, flavor, weighted, storage, tmp_path):
        py, np_ = _index_pair(flavor, weighted, storage, tmp_path)
        reference = py.neighborhood_function()
        candidate = np_.neighborhood_function()
        assert [d for d, _ in reference] == [d for d, _ in candidate]
        _approx([v for _, v in reference], [v for _, v in candidate])
        for label in list(py.nodes())[:5]:
            assert py.node_neighborhood_function(label) == \
                np_.node_neighborhood_function(label)

    def test_top_central_agrees(self, flavor, weighted, storage, tmp_path):
        py, np_ = _index_pair(flavor, weighted, storage, tmp_path)
        reference = py.top_central(7, classic=True)
        candidate = np_.top_central(7, classic=True)
        assert [label for label, _ in reference] == \
            [label for label, _ in candidate]
        _approx([v for _, v in reference], [v for _, v in candidate])


@requires_numpy
class TestBatchVsNodeQueries:
    """The NumPy batch sweeps must agree with the (always pure)
    single-node estimators -- the docstring promise predating kernels."""

    def test_batch_matches_per_node(self):
        index = AdsIndex.build(
            _graph(weighted=True), 4, family=HashFamily(3), backend="numpy"
        )
        batch_card = index.cardinality_at(1.2)
        batch_close = index.closeness_centrality(alpha=harmonic_kernel())
        for label in index.nodes():
            assert batch_card[label] == index.node_cardinality_at(label, 1.2)
            _approx(
                index.node_closeness_centrality(
                    label, alpha=harmonic_kernel()
                ),
                batch_close[label],
            )

    def test_negative_kernel_rejected(self):
        index = AdsIndex.build(
            _graph(weighted=False), 4, family=HashFamily(3), backend="numpy"
        )
        with pytest.raises(EstimatorError, match="nonnegative"):
            index.closeness_centrality(alpha=lambda d: -1.0)


def _apply_case(flavor, weighted, backend, kernel_workers=None, seed=17):
    """Build a small index, apply a random edge batch, return both."""
    rng = random.Random(seed)
    n = 12

    def weight():
        return round(rng.uniform(0.5, 3.0), 2) if weighted else 1.0

    base = [
        (u, v, weight())
        for u, v in (
            (rng.randrange(n), rng.randrange(n)) for _ in range(2 * n)
        )
        if u != v
    ]
    batch = [
        (u, v, weight())
        for u, v in (
            (rng.randrange(n + 2), rng.randrange(n + 2))
            for _ in range(6)
        )
        if u != v
    ]
    graph = CSRGraph.from_edges(base, directed=False, nodes=range(n))
    index = AdsIndex.build(
        graph, 4, family=HashFamily(7), flavor=flavor, backend=backend,
        kernel_workers=kernel_workers,
    )
    index.cardinality_at(1.0)  # materialise the prefix cache
    index.apply_edges(graph, batch)
    return graph, index


@requires_numpy
@pytest.mark.parametrize("weighted", (False, True))
@pytest.mark.parametrize("flavor", FLAVORS)
class TestDynamicUpdatesAcrossBackends:
    """apply_edges must splice bit-identical columns (HIP weights
    included) whichever kernel recomputes the dirty slices."""

    def test_columns_bit_identical(self, flavor, weighted):
        graph_py, index_py = _apply_case(flavor, weighted, "python")
        graph_np, index_np = _apply_case(flavor, weighted, "numpy")
        for name in ("_offsets", "_node", "_dist", "_rank", "_tiebreak",
                     "_aux", "_hip"):
            assert bytes(getattr(index_py, name)) == \
                bytes(getattr(index_np, name)), name
        rebuilt = AdsIndex.build(
            CSRGraph.from_edges(
                list(graph_np.edges()), directed=False,
                nodes=graph_np.nodes(),
            ),
            4, family=HashFamily(7), flavor=flavor, backend="python",
        )
        assert bytes(index_np._hip) == bytes(rebuilt._hip)

    def test_cum_cache_spliced_not_dropped(self, flavor, weighted):
        _, index = _apply_case(flavor, weighted, "numpy")
        spliced = index._cum_cache
        assert spliced is not None  # updates splice instead of dropping
        assert bytes(spliced) == bytes(index._compute_cum_hip())
        _, reference = _apply_case(flavor, weighted, "python")
        assert index.cardinality_at(math.inf) == \
            reference.cardinality_at(math.inf)


class TestCumHipSplice:
    """Satellite contract: apply_edges patches the cached prefix column
    in place; only an unmaterialised cache stays lazy."""

    def _setup(self, materialise):
        graph = gnp_random_graph(20, 0.15, seed=2).to_csr()
        index = AdsIndex.build(
            graph, 4, family=HashFamily(5), backend="python"
        )
        if not materialise:
            # Simulate a lazy load: drop the eager-built cache.
            index._cum_cache = None
        return graph, index

    def test_materialised_cache_is_spliced(self):
        graph, index = self._setup(materialise=True)
        index.apply_edges(graph, [(0, 19), (3, 17)])
        assert index._cum_cache is not None
        assert bytes(index._cum_cache) == bytes(index._compute_cum_hip())

    def test_unmaterialised_cache_stays_lazy(self):
        graph, index = self._setup(materialise=False)
        index.apply_edges(graph, [(0, 19)])
        assert index._cum_cache is None
        # ... and still materialises correctly on demand.
        assert bytes(index._cum_hip) == bytes(index._compute_cum_hip())

    def test_spliced_queries_match_rebuild(self):
        graph, index = self._setup(materialise=True)
        index.apply_edges(graph, [(0, 19), (5, 12), (2, 18)])
        rebuilt = AdsIndex.build(
            CSRGraph.from_edges(
                list(graph.edges()), directed=False, nodes=graph.nodes()
            ),
            4, family=HashFamily(5), backend="python",
        )
        assert index.cardinality_at(2.0) == rebuilt.cardinality_at(2.0)
        assert index.closeness_centrality(classic=True) == \
            rebuilt.closeness_centrality(classic=True)


class TestBackendSelection:
    def test_default_is_auto(self):
        index = AdsIndex.build(_graph(False), 4, family=HashFamily(1))
        expected = "numpy" if kernels.numpy_available() else "python"
        assert index.backend == expected

    def test_explicit_python(self):
        index = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="python"
        )
        assert index.backend == "python"
        # The parallel tier may wrap the kernel (REPRO_KERNEL_WORKERS);
        # the *base* kernel is what --backend selects.
        assert index._kernel_base is pure

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError, match="unknown backend"):
            AdsIndex.build(
                _graph(False), 4, family=HashFamily(1), backend="fortran"
            )

    def test_env_override_applies_to_auto(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "python")
        index = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="auto"
        )
        assert index.backend == "python"

    @requires_numpy
    def test_explicit_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "python")
        index = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="numpy"
        )
        assert index.backend == "numpy"

    def test_invalid_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "warp-drive")
        with pytest.raises(ParameterError, match="REPRO_BACKEND"):
            kernels.resolve("auto")

    def test_available_backends_shape(self):
        names = kernels.available_backends()
        assert names[0] == "auto" and names[-1] == "python"

    @requires_numpy
    def test_load_backend_plumbs_through(self, tmp_path):
        index = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="python"
        )
        destination = tmp_path / "plumb.adsidx"
        index.save(destination)
        assert AdsIndex.load(destination).backend == "numpy"
        assert AdsIndex.load(
            destination, backend="python"
        ).backend == "python"
        assert AdsIndex.load(
            destination, mmap=True, backend="numpy"
        ).backend == "numpy"


class TestForcedFallback:
    """With the NumPy import blocked, 'auto' degrades to the pure
    kernel and everything keeps answering the same floats."""

    @pytest.fixture
    def blocked_numpy(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)
        monkeypatch.delitem(
            sys.modules, "repro.ads.kernels.np_kernel", raising=False
        )
        monkeypatch.delattr(kernels, "np_kernel", raising=False)
        kernels._reset_numpy_cache()
        yield
        kernels._reset_numpy_cache()

    def test_auto_falls_back_and_matches(self, blocked_numpy):
        reference = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="python"
        )
        fallen_back = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="auto"
        )
        assert fallen_back.backend == "python"
        assert not kernels.numpy_available()
        assert "numpy" not in kernels.available_backends()
        assert fallen_back.cardinality_at(1.0) == \
            reference.cardinality_at(1.0)
        assert fallen_back.closeness_centrality(classic=True) == \
            reference.closeness_centrality(classic=True)
        assert fallen_back.neighborhood_function() == \
            reference.neighborhood_function()

    def test_explicit_numpy_refuses_to_degrade(self, blocked_numpy):
        with pytest.raises(ParameterError, match="not importable"):
            AdsIndex.build(
                _graph(False), 4, family=HashFamily(1), backend="numpy"
            )

    def test_load_reports_backend_error_not_corruption(
        self, blocked_numpy, tmp_path
    ):
        index = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="python"
        )
        destination = tmp_path / "plain.adsidx"
        index.save(destination)
        # A bad backend request must surface as itself, not as a
        # "corrupt header" from the load-time constructor guard.
        with pytest.raises(ParameterError, match="not importable"):
            AdsIndex.load(destination, backend="numpy")
        with pytest.raises(ParameterError, match="unknown backend"):
            AdsIndex.load(destination, backend="cuda")


class TestTopCentralHeapSelection:
    def _centralities(self, seed=4):
        rng = random.Random(seed)
        values = {i: rng.choice((0.25, 0.5, 0.75, 1.0)) for i in range(40)}
        return values

    def _sorted_reference(self, values, count, largest):
        ordered = sorted(
            values.items(),
            key=lambda item: (
                -item[1] if largest else item[1], repr(item[0])
            ),
        )
        return ordered[:count]

    @pytest.mark.parametrize("largest", (True, False))
    @pytest.mark.parametrize("count", (0, 1, 3, 39, 40, 100))
    def test_matches_full_sort(self, count, largest):
        values = self._centralities()
        assert top_k_central_nodes(values, count, largest=largest) == \
            self._sorted_reference(values, count, largest)

    def test_tie_break_by_repr(self):
        values = {10: 1.0, 2: 1.0, 30: 1.0, "x": 0.5}
        top = top_k_central_nodes(values, 3)
        assert top == [(10, 1.0), (2, 1.0), (30, 1.0)]


@requires_numpy
class TestServeAndCliSurface:
    def test_stats_reports_backend(self):
        from repro.serve import AdsServer
        from repro.serve.client import QueryClient

        index = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="numpy"
        )
        with AdsServer(index, cache_size=4, threads=2) as server:
            stats = QueryClient(server.url).stats()
        assert stats["index"]["backend"] == "numpy"

    def test_cli_backends_agree(self, tmp_path, capsys):
        from repro.cli import main

        graph = tmp_path / "g.txt"
        graph.write_text("0 1\n1 2\n2 3\n0 3\n")
        destination = tmp_path / "g.adsidx"
        assert main([
            "build-index", str(graph), "--int-nodes", "--k", "4",
            "--backend", "python", "--out", str(destination),
        ]) == 0
        capsys.readouterr()
        outputs = {}
        for backend in ("python", "numpy"):
            assert main([
                "query", str(destination), "--cardinality", "1",
                "--backend", backend,
            ]) == 0
            outputs[backend] = capsys.readouterr().out
        assert outputs["python"] == outputs["numpy"]


# ----------------------------------------------------------------------
# Parallel kernel tier (repro.ads.kernels.parallel)
# ----------------------------------------------------------------------
BACKENDS = ("python", pytest.param("numpy", marks=requires_numpy))
WORKER_COUNTS = (2, 4)


def _storage_loader(flavor, weighted, storage, tmp_path, k=4):
    """Persist one sketch set; return ``load(backend, workers)``."""
    graph = _graph(weighted)
    built = AdsIndex.build(
        graph, k, family=HashFamily(99), flavor=flavor, backend="python"
    )
    if storage == "mmap-sharded":
        destination = tmp_path / "parallel-eq-sharded"
        built.save(destination, shards=3)
        mmap = True
    else:
        destination = tmp_path / "parallel-eq.adsidx"
        built.save(destination)
        mmap = storage == "mmap-single"

    def load(backend, workers):
        return AdsIndex.load(
            destination, mmap=mmap, backend=backend, kernel_workers=workers
        )

    return load


@pytest.mark.parametrize("storage", STORAGES)
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
class TestParallelEquivalence:
    """The ISSUE acceptance bar: every batch query returns bit-identical
    results at any worker count, for every backend x storage layout.
    Explicit worker counts engage the pools even on tiny indexes."""

    def test_batch_queries_bit_identical(
        self, storage, backend, workers, tmp_path
    ):
        load = _storage_loader("bottomk", True, storage, tmp_path)
        serial = load(backend, 1)
        fanned = load(backend, workers)
        assert serial.kernel_workers == 1
        assert fanned.kernel_workers == workers
        assert serial._kernel is serial._kernel_base
        assert isinstance(fanned._kernel, kernel_parallel.ParallelKernel)
        assert bytes(serial._cum_hip) == bytes(fanned._cum_hip)
        for d in (0.0, 0.7, 1.8, math.inf):
            assert serial.cardinality_at(d) == fanned.cardinality_at(d)
        kind_kwargs = (
            {"classic": True},
            {"alpha": harmonic_kernel()},
            {"alpha": exponential_decay_kernel(2.0)},
            # A lambda beta cannot cross a process boundary; the pool
            # path must quietly hand it back to the serial kernel.
            {"beta": lambda node: 1.5 if node % 2 else 0.5},
        )
        for kwargs in kind_kwargs:
            assert serial.closeness_centrality(**kwargs) == \
                fanned.closeness_centrality(**kwargs)
        assert serial.neighborhood_function() == \
            fanned.neighborhood_function()
        assert serial.top_central(7, classic=True) == \
            fanned.top_central(7, classic=True)

    def test_all_flavors_cum_hip_exact(
        self, storage, backend, workers, tmp_path
    ):
        for flavor in FLAVORS:
            for weighted in (False, True):
                subdir = tmp_path / f"{flavor}-{weighted}"
                subdir.mkdir()
                load = _storage_loader(flavor, weighted, storage, subdir)
                serial = load(backend, 1)
                fanned = load(backend, workers)
                assert bytes(serial._compute_cum_hip()) == \
                    bytes(fanned._compute_cum_hip()), (flavor, weighted)
                assert serial.cardinality_at(1.2) == \
                    fanned.cardinality_at(1.2), (flavor, weighted)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("flavor", FLAVORS)
class TestParallelDynamicUpdates:
    """apply_edges must splice byte-identical columns whichever worker
    count recomputes the dirty HIP slices (kmins exercises the
    entry-label merge inside the fanned slice recompute)."""

    def test_apply_edges_bit_identical_across_workers(
        self, flavor, backend
    ):
        _, serial = _apply_case(flavor, True, backend, kernel_workers=1)
        for workers in WORKER_COUNTS:
            _, fanned = _apply_case(
                flavor, True, backend, kernel_workers=workers
            )
            assert isinstance(
                fanned._kernel, kernel_parallel.ParallelKernel
            )
            for name in ("_offsets", "_node", "_dist", "_rank",
                         "_tiebreak", "_aux", "_hip"):
                assert bytes(getattr(serial, name)) == \
                    bytes(getattr(fanned, name)), (workers, name)
            assert bytes(serial._cum_cache) == bytes(fanned._cum_cache)


class TestWorkerResolution:
    def test_parse_workers_accepts_auto_and_counts(self):
        assert kernel_parallel.parse_workers(None) == "auto"
        assert kernel_parallel.parse_workers("auto") == "auto"
        assert kernel_parallel.parse_workers(" AUTO ") == "auto"
        assert kernel_parallel.parse_workers(3) == 3
        assert kernel_parallel.parse_workers("4") == 4

    @pytest.mark.parametrize("bad", (0, -2, "zero", "1.5", 2.0, True, []))
    def test_parse_workers_rejects_garbage(self, bad):
        with pytest.raises(ParameterError, match="kernel workers"):
            kernel_parallel.parse_workers(bad)

    def test_explicit_count_honoured_on_tiny_index(self, monkeypatch):
        monkeypatch.delenv(kernel_parallel.WORKERS_ENV_VAR, raising=False)
        assert kernel_parallel.resolve_workers(4, entries=10) == 4

    def test_auto_stays_serial_below_crossover(self, monkeypatch):
        monkeypatch.delenv(kernel_parallel.WORKERS_ENV_VAR, raising=False)
        entries = kernel_parallel.AUTO_MIN_ENTRIES - 1
        assert kernel_parallel.resolve_workers(None, entries=entries) == 1

    def test_auto_scales_to_cores_and_shards(self, monkeypatch):
        monkeypatch.delenv(kernel_parallel.WORKERS_ENV_VAR, raising=False)
        monkeypatch.setattr(kernel_parallel.os, "cpu_count", lambda: 8)
        entries = kernel_parallel.AUTO_MIN_ENTRIES
        resolve = kernel_parallel.resolve_workers
        assert resolve(None, entries=entries) == 8
        assert resolve(None, entries=entries, shards=3) == 3
        assert resolve(None, entries=entries, shards=16) == 8

    def test_env_var_overrides_auto(self, monkeypatch):
        monkeypatch.setenv(kernel_parallel.WORKERS_ENV_VAR, "3")
        # The env count bypasses the small-index crossover gate.
        assert kernel_parallel.resolve_workers(None, entries=10) == 3
        # ... but an explicit request still beats the environment.
        assert kernel_parallel.resolve_workers(2, entries=10) == 2

    def test_invalid_env_var_names_itself(self, monkeypatch):
        monkeypatch.setenv(kernel_parallel.WORKERS_ENV_VAR, "banana")
        with pytest.raises(
            ParameterError, match=kernel_parallel.WORKERS_ENV_VAR
        ):
            kernel_parallel.resolve_workers(None, entries=10)

    def test_invalid_pool_env_rejected(self, monkeypatch):
        monkeypatch.setenv(kernel_parallel.POOL_ENV_VAR, "fibers")
        with pytest.raises(
            ParameterError, match=kernel_parallel.POOL_ENV_VAR
        ):
            kernel_parallel.resolve_pool("python")

    def test_pool_env_override(self, monkeypatch):
        monkeypatch.setenv(kernel_parallel.POOL_ENV_VAR, "thread")
        assert kernel_parallel.resolve_pool("python") == "thread"
        monkeypatch.delenv(kernel_parallel.POOL_ENV_VAR)
        assert kernel_parallel.resolve_pool("python") == "process"
        assert kernel_parallel.resolve_pool("numpy") == "thread"

    def test_build_validates_kernel_workers(self):
        with pytest.raises(ParameterError, match="kernel workers"):
            AdsIndex.build(
                _graph(False), 4, family=HashFamily(1), kernel_workers=0
            )
        with pytest.raises(ParameterError, match="kernel workers"):
            AdsIndex.build(
                _graph(False), 4, family=HashFamily(1),
                kernel_workers="lots",
            )

    def test_load_validates_kernel_workers_up_front(self, tmp_path):
        index = AdsIndex.build(_graph(False), 4, family=HashFamily(1))
        destination = tmp_path / "validate.adsidx"
        index.save(destination)
        with pytest.raises(ParameterError, match="kernel workers"):
            AdsIndex.load(destination, kernel_workers=-1)

    def test_set_kernel_workers_rewires(self):
        index = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="python",
            kernel_workers=1,
        )
        reference = index.cardinality_at(1.0)
        index.set_kernel_workers(3)
        assert index.kernel_workers == 3
        assert isinstance(index._kernel, kernel_parallel.ParallelKernel)
        assert index.cardinality_at(1.0) == reference
        index.set_kernel_workers(1)
        assert index.kernel_workers == 1
        assert index._kernel is index._kernel_base
        assert index.cardinality_at(1.0) == reference


class TestParallelFallback:
    """When no pool can be created at all, the parallel tier must
    degrade to the serial base kernel -- same floats, no errors."""

    @pytest.fixture
    def broken_pools(self, monkeypatch):
        kernel_parallel._reset_executors()

        def refuse(mode, workers):
            raise OSError("pools unavailable in this environment")

        monkeypatch.setattr(kernel_parallel, "_create_executor", refuse)
        yield
        kernel_parallel._reset_executors()

    def test_serial_fallback_matches(self, broken_pools):
        reference = AdsIndex.build(
            _graph(True), 4, family=HashFamily(1), backend="python",
            kernel_workers=1,
        )
        fanned = AdsIndex.build(
            _graph(True), 4, family=HashFamily(1), backend="python",
            kernel_workers=2,
        )
        assert isinstance(fanned._kernel, kernel_parallel.ParallelKernel)
        assert bytes(reference._cum_hip) == bytes(fanned._cum_hip)
        assert reference.cardinality_at(1.0) == fanned.cardinality_at(1.0)
        assert reference.closeness_centrality(classic=True) == \
            fanned.closeness_centrality(classic=True)
        assert reference.neighborhood_function() == \
            fanned.neighborhood_function()

    @requires_numpy
    def test_estimator_errors_propagate_from_workers(self):
        index = AdsIndex.build(
            _graph(False), 4, family=HashFamily(3), backend="numpy",
            kernel_workers=2,
        )
        with pytest.raises(EstimatorError, match="nonnegative"):
            index.closeness_centrality(alpha=lambda d: -1.0)


class TestServeKernelWorkers:
    def _index(self, workers):
        return AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="python",
            kernel_workers=workers,
        )

    def test_stats_reports_kernel_workers(self):
        from repro.serve import AdsServer
        from repro.serve.client import QueryClient

        index = self._index(2)
        # One serving thread leaves the budget (2 x cpu_count) intact,
        # so the wired count survives the oversubscription cap.
        with AdsServer(index, cache_size=4, threads=1) as server:
            stats = QueryClient(server.url).stats()
        assert stats["index"]["kernel_workers"] == 2
        assert index.kernel_workers == 2

    def test_oversubscribed_index_rewired_down(self):
        from repro.serve import AdsServer

        cpus = os.cpu_count() or 1
        # threads = 4 x cpus makes the per-request budget
        # (2 x cpus) // threads = 0 -> capped at the floor of 1.
        index = self._index(4)
        with AdsServer(index, cache_size=0, threads=4 * cpus) as server:
            assert server.kernel_workers == 1
        assert index.kernel_workers == 1
        assert index._kernel is index._kernel_base


class TestParallelCliSurface:
    def _build(self, tmp_path, extra=()):
        from repro.cli import main

        graph = tmp_path / "g.txt"
        graph.write_text(
            "\n".join(f"{u} {(u + 1) % 9}\n{u} {(u + 4) % 9}"
                      for u in range(9)) + "\n"
        )
        destination = tmp_path / "g.adsidx"
        assert main([
            "build-index", str(graph), "--int-nodes", "--k", "4",
            "--backend", "python", "--out", str(destination), *extra,
        ]) == 0
        return destination

    def test_cli_worker_counts_agree(self, tmp_path, capsys):
        from repro.cli import main

        destination = self._build(
            tmp_path, extra=("--kernel-workers", "2")
        )
        capsys.readouterr()
        outputs = {}
        for workers in ("1", "2"):
            assert main([
                "query", str(destination), "--cardinality", "1",
                "--kernel-workers", workers,
            ]) == 0
            outputs[workers] = capsys.readouterr().out
        assert outputs["1"] == outputs["2"]

    def test_cli_rejects_bad_worker_count(self, tmp_path, capsys):
        from repro.cli import main

        destination = self._build(tmp_path)
        capsys.readouterr()
        assert main([
            "query", str(destination), "--kernel-workers", "0",
        ]) == 1
        assert "kernel workers" in capsys.readouterr().err
