"""Kernel-equivalence property suite (repro.ads.kernels).

The acceptance bar mirrors the package contract: the NumPy kernel must
agree with the pure reference loops *exactly* for cum-hip columns and
cardinality estimates, and to <= 1e-9 relative error for aggregated
closeness/neighborhood sums -- across all three sketch flavors, both
persisted layouts (eager and memory-mapped loads), and weighted and
unweighted graphs.  Alongside live the backend-selection rules
(explicit argument, REPRO_BACKEND, forced fallback with the NumPy
import blocked) and the heap-selection contract of
``top_k_central_nodes``.

Every NumPy-dependent test skips cleanly when NumPy is missing, so the
suite passes identically on a pure-Python deployment.
"""

import math
import random
import sys

import pytest

from repro.ads import AdsIndex, kernels
from repro.ads.kernels import pure
from repro.errors import EstimatorError, ParameterError
from repro.estimators.statistics import (
    exponential_decay_kernel,
    harmonic_kernel,
)
from repro.centrality.closeness import top_k_central_nodes
from repro.graph import gnp_random_graph, random_geometric_graph
from repro.graph.csr import CSRGraph
from repro.rand.hashing import HashFamily

FLAVORS = ("bottomk", "kmins", "kpartition")
STORAGES = ("eager", "mmap-single", "mmap-sharded")

requires_numpy = pytest.mark.skipif(
    not kernels.numpy_available(), reason="NumPy not installed"
)


def _graph(weighted: bool):
    if weighted:
        return random_geometric_graph(40, 0.35, seed=11).to_csr()
    return gnp_random_graph(48, 0.09, seed=5).to_csr()


def _index_pair(flavor, weighted, storage, tmp_path, k=4):
    """The same persisted sketch set loaded on both backends."""
    graph = _graph(weighted)
    built = AdsIndex.build(
        graph, k, family=HashFamily(99), flavor=flavor, backend="python"
    )
    if storage == "eager":
        destination = tmp_path / "kernel-eq.adsidx"
        built.save(destination)
        load = lambda backend: AdsIndex.load(  # noqa: E731
            destination, backend=backend
        )
    else:
        if storage == "mmap-single":
            destination = tmp_path / "kernel-eq.adsidx"
            built.save(destination)
        else:
            destination = tmp_path / "kernel-eq-sharded"
            built.save(destination, shards=3)
        load = lambda backend: AdsIndex.load(  # noqa: E731
            destination, mmap=True, backend=backend
        )
    return load("python"), load("numpy")


def _approx(reference, candidate):
    assert candidate == pytest.approx(reference, rel=1e-9, abs=1e-12)


@requires_numpy
@pytest.mark.parametrize("storage", STORAGES)
@pytest.mark.parametrize("weighted", (False, True))
@pytest.mark.parametrize("flavor", FLAVORS)
class TestBackendEquivalence:
    def test_cum_hip_and_cardinality_exact(
        self, flavor, weighted, storage, tmp_path
    ):
        py, np_ = _index_pair(flavor, weighted, storage, tmp_path)
        assert py.backend == "python" and np_.backend == "numpy"
        assert bytes(py._cum_hip) == bytes(np_._cum_hip)
        for d in (0.0, 0.4, 1.0, 2.5, math.inf):
            assert py.cardinality_at(d) == np_.cardinality_at(d)
        for label in list(py.nodes())[:5]:
            assert py.node_cardinality_at(label, 1.5) == \
                np_.node_cardinality_at(label, 1.5)

    def test_closeness_all_kinds(self, flavor, weighted, storage, tmp_path):
        py, np_ = _index_pair(flavor, weighted, storage, tmp_path)
        kind_kwargs = (
            {"classic": True},
            {},  # raw sum of distances
            {"alpha": harmonic_kernel()},
            {"alpha": exponential_decay_kernel(2.0)},
            {"beta": lambda node: 1.5 if node % 2 else 0.5},
        )
        for kwargs in kind_kwargs:
            reference = py.closeness_centrality(**kwargs)
            candidate = np_.closeness_centrality(**kwargs)
            assert list(reference) == list(candidate)
            _approx(list(reference.values()), list(candidate.values()))

    def test_neighborhood_function(self, flavor, weighted, storage, tmp_path):
        py, np_ = _index_pair(flavor, weighted, storage, tmp_path)
        reference = py.neighborhood_function()
        candidate = np_.neighborhood_function()
        assert [d for d, _ in reference] == [d for d, _ in candidate]
        _approx([v for _, v in reference], [v for _, v in candidate])
        for label in list(py.nodes())[:5]:
            assert py.node_neighborhood_function(label) == \
                np_.node_neighborhood_function(label)

    def test_top_central_agrees(self, flavor, weighted, storage, tmp_path):
        py, np_ = _index_pair(flavor, weighted, storage, tmp_path)
        reference = py.top_central(7, classic=True)
        candidate = np_.top_central(7, classic=True)
        assert [label for label, _ in reference] == \
            [label for label, _ in candidate]
        _approx([v for _, v in reference], [v for _, v in candidate])


@requires_numpy
class TestBatchVsNodeQueries:
    """The NumPy batch sweeps must agree with the (always pure)
    single-node estimators -- the docstring promise predating kernels."""

    def test_batch_matches_per_node(self):
        index = AdsIndex.build(
            _graph(weighted=True), 4, family=HashFamily(3), backend="numpy"
        )
        batch_card = index.cardinality_at(1.2)
        batch_close = index.closeness_centrality(alpha=harmonic_kernel())
        for label in index.nodes():
            assert batch_card[label] == index.node_cardinality_at(label, 1.2)
            _approx(
                index.node_closeness_centrality(
                    label, alpha=harmonic_kernel()
                ),
                batch_close[label],
            )

    def test_negative_kernel_rejected(self):
        index = AdsIndex.build(
            _graph(weighted=False), 4, family=HashFamily(3), backend="numpy"
        )
        with pytest.raises(EstimatorError, match="nonnegative"):
            index.closeness_centrality(alpha=lambda d: -1.0)


@requires_numpy
@pytest.mark.parametrize("weighted", (False, True))
@pytest.mark.parametrize("flavor", FLAVORS)
class TestDynamicUpdatesAcrossBackends:
    """apply_edges must splice bit-identical columns (HIP weights
    included) whichever kernel recomputes the dirty slices."""

    def _apply_case(self, flavor, weighted, backend, seed=17):
        rng = random.Random(seed)
        n = 12

        def weight():
            return round(rng.uniform(0.5, 3.0), 2) if weighted else 1.0

        base = [
            (u, v, weight())
            for u, v in (
                (rng.randrange(n), rng.randrange(n)) for _ in range(2 * n)
            )
            if u != v
        ]
        batch = [
            (u, v, weight())
            for u, v in (
                (rng.randrange(n + 2), rng.randrange(n + 2))
                for _ in range(6)
            )
            if u != v
        ]
        graph = CSRGraph.from_edges(base, directed=False, nodes=range(n))
        index = AdsIndex.build(
            graph, 4, family=HashFamily(7), flavor=flavor, backend=backend
        )
        index.cardinality_at(1.0)  # materialise the prefix cache
        index.apply_edges(graph, batch)
        return graph, index

    def test_columns_bit_identical(self, flavor, weighted):
        graph_py, index_py = self._apply_case(flavor, weighted, "python")
        graph_np, index_np = self._apply_case(flavor, weighted, "numpy")
        for name in ("_offsets", "_node", "_dist", "_rank", "_tiebreak",
                     "_aux", "_hip"):
            assert bytes(getattr(index_py, name)) == \
                bytes(getattr(index_np, name)), name
        rebuilt = AdsIndex.build(
            CSRGraph.from_edges(
                list(graph_np.edges()), directed=False,
                nodes=graph_np.nodes(),
            ),
            4, family=HashFamily(7), flavor=flavor, backend="python",
        )
        assert bytes(index_np._hip) == bytes(rebuilt._hip)

    def test_cum_cache_spliced_not_dropped(self, flavor, weighted):
        _, index = self._apply_case(flavor, weighted, "numpy")
        spliced = index._cum_cache
        assert spliced is not None  # updates splice instead of dropping
        assert bytes(spliced) == bytes(index._compute_cum_hip())
        _, reference = self._apply_case(flavor, weighted, "python")
        assert index.cardinality_at(math.inf) == \
            reference.cardinality_at(math.inf)


class TestCumHipSplice:
    """Satellite contract: apply_edges patches the cached prefix column
    in place; only an unmaterialised cache stays lazy."""

    def _setup(self, materialise):
        graph = gnp_random_graph(20, 0.15, seed=2).to_csr()
        index = AdsIndex.build(
            graph, 4, family=HashFamily(5), backend="python"
        )
        if not materialise:
            # Simulate a lazy load: drop the eager-built cache.
            index._cum_cache = None
        return graph, index

    def test_materialised_cache_is_spliced(self):
        graph, index = self._setup(materialise=True)
        index.apply_edges(graph, [(0, 19), (3, 17)])
        assert index._cum_cache is not None
        assert bytes(index._cum_cache) == bytes(index._compute_cum_hip())

    def test_unmaterialised_cache_stays_lazy(self):
        graph, index = self._setup(materialise=False)
        index.apply_edges(graph, [(0, 19)])
        assert index._cum_cache is None
        # ... and still materialises correctly on demand.
        assert bytes(index._cum_hip) == bytes(index._compute_cum_hip())

    def test_spliced_queries_match_rebuild(self):
        graph, index = self._setup(materialise=True)
        index.apply_edges(graph, [(0, 19), (5, 12), (2, 18)])
        rebuilt = AdsIndex.build(
            CSRGraph.from_edges(
                list(graph.edges()), directed=False, nodes=graph.nodes()
            ),
            4, family=HashFamily(5), backend="python",
        )
        assert index.cardinality_at(2.0) == rebuilt.cardinality_at(2.0)
        assert index.closeness_centrality(classic=True) == \
            rebuilt.closeness_centrality(classic=True)


class TestBackendSelection:
    def test_default_is_auto(self):
        index = AdsIndex.build(_graph(False), 4, family=HashFamily(1))
        expected = "numpy" if kernels.numpy_available() else "python"
        assert index.backend == expected

    def test_explicit_python(self):
        index = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="python"
        )
        assert index.backend == "python"
        assert index._kernel is pure

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError, match="unknown backend"):
            AdsIndex.build(
                _graph(False), 4, family=HashFamily(1), backend="fortran"
            )

    def test_env_override_applies_to_auto(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "python")
        index = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="auto"
        )
        assert index.backend == "python"

    @requires_numpy
    def test_explicit_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "python")
        index = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="numpy"
        )
        assert index.backend == "numpy"

    def test_invalid_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "warp-drive")
        with pytest.raises(ParameterError, match="REPRO_BACKEND"):
            kernels.resolve("auto")

    def test_available_backends_shape(self):
        names = kernels.available_backends()
        assert names[0] == "auto" and names[-1] == "python"

    @requires_numpy
    def test_load_backend_plumbs_through(self, tmp_path):
        index = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="python"
        )
        destination = tmp_path / "plumb.adsidx"
        index.save(destination)
        assert AdsIndex.load(destination).backend == "numpy"
        assert AdsIndex.load(
            destination, backend="python"
        ).backend == "python"
        assert AdsIndex.load(
            destination, mmap=True, backend="numpy"
        ).backend == "numpy"


class TestForcedFallback:
    """With the NumPy import blocked, 'auto' degrades to the pure
    kernel and everything keeps answering the same floats."""

    @pytest.fixture
    def blocked_numpy(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)
        monkeypatch.delitem(
            sys.modules, "repro.ads.kernels.np_kernel", raising=False
        )
        monkeypatch.delattr(kernels, "np_kernel", raising=False)
        kernels._reset_numpy_cache()
        yield
        kernels._reset_numpy_cache()

    def test_auto_falls_back_and_matches(self, blocked_numpy):
        reference = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="python"
        )
        fallen_back = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="auto"
        )
        assert fallen_back.backend == "python"
        assert not kernels.numpy_available()
        assert "numpy" not in kernels.available_backends()
        assert fallen_back.cardinality_at(1.0) == \
            reference.cardinality_at(1.0)
        assert fallen_back.closeness_centrality(classic=True) == \
            reference.closeness_centrality(classic=True)
        assert fallen_back.neighborhood_function() == \
            reference.neighborhood_function()

    def test_explicit_numpy_refuses_to_degrade(self, blocked_numpy):
        with pytest.raises(ParameterError, match="not importable"):
            AdsIndex.build(
                _graph(False), 4, family=HashFamily(1), backend="numpy"
            )

    def test_load_reports_backend_error_not_corruption(
        self, blocked_numpy, tmp_path
    ):
        index = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="python"
        )
        destination = tmp_path / "plain.adsidx"
        index.save(destination)
        # A bad backend request must surface as itself, not as a
        # "corrupt header" from the load-time constructor guard.
        with pytest.raises(ParameterError, match="not importable"):
            AdsIndex.load(destination, backend="numpy")
        with pytest.raises(ParameterError, match="unknown backend"):
            AdsIndex.load(destination, backend="cuda")


class TestTopCentralHeapSelection:
    def _centralities(self, seed=4):
        rng = random.Random(seed)
        values = {i: rng.choice((0.25, 0.5, 0.75, 1.0)) for i in range(40)}
        return values

    def _sorted_reference(self, values, count, largest):
        ordered = sorted(
            values.items(),
            key=lambda item: (
                -item[1] if largest else item[1], repr(item[0])
            ),
        )
        return ordered[:count]

    @pytest.mark.parametrize("largest", (True, False))
    @pytest.mark.parametrize("count", (0, 1, 3, 39, 40, 100))
    def test_matches_full_sort(self, count, largest):
        values = self._centralities()
        assert top_k_central_nodes(values, count, largest=largest) == \
            self._sorted_reference(values, count, largest)

    def test_tie_break_by_repr(self):
        values = {10: 1.0, 2: 1.0, 30: 1.0, "x": 0.5}
        top = top_k_central_nodes(values, 3)
        assert top == [(10, 1.0), (2, 1.0), (30, 1.0)]


@requires_numpy
class TestServeAndCliSurface:
    def test_stats_reports_backend(self):
        from repro.serve import AdsServer
        from repro.serve.client import QueryClient

        index = AdsIndex.build(
            _graph(False), 4, family=HashFamily(1), backend="numpy"
        )
        with AdsServer(index, cache_size=4, threads=2) as server:
            stats = QueryClient(server.url).stats()
        assert stats["index"]["backend"] == "numpy"

    def test_cli_backends_agree(self, tmp_path, capsys):
        from repro.cli import main

        graph = tmp_path / "g.txt"
        graph.write_text("0 1\n1 2\n2 3\n0 3\n")
        destination = tmp_path / "g.adsidx"
        assert main([
            "build-index", str(graph), "--int-nodes", "--k", "4",
            "--backend", "python", "--out", str(destination),
        ]) == 0
        capsys.readouterr()
        outputs = {}
        for backend in ("python", "numpy"):
            assert main([
                "query", str(destination), "--cardinality", "1",
                "--backend", backend,
            ]) == 0
            outputs[backend] = capsys.readouterr().out
        assert outputs["python"] == outputs["numpy"]
