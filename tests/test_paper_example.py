"""Reproduction of the paper's worked Example 2.1 (Figure 1 graph),
driven through the public builder API with the figure's rank values."""

import pytest

from repro.ads import build_ads_set
from repro.graph import figure1_ranks


def _content(ads):
    """(distance, node) pairs in scan order."""
    return [(e.distance, e.node) for e in ads.entries]


class TestExample21:
    def test_forward_ads_of_a_k1(self, figure1, figure1_family):
        ads_set = build_ads_set(figure1, 1, family=figure1_family)
        assert _content(ads_set["a"]) == [
            (0.0, "a"), (9.0, "c"), (18.0, "d"), (26.0, "h"),
        ]

    def test_backward_ads_of_b_k1(self, figure1, figure1_family):
        ads_set = build_ads_set(
            figure1, 1, family=figure1_family, direction="backward"
        )
        assert _content(ads_set["b"]) == [
            (0.0, "b"), (8.0, "a"), (30.0, "c"), (31.0, "h"),
        ]

    def test_forward_ads_of_a_bottom2(self, figure1, figure1_family):
        ads_set = build_ads_set(figure1, 2, family=figure1_family)
        assert set(_content(ads_set["a"])) == {
            (0.0, "a"), (9.0, "c"), (18.0, "d"), (26.0, "h"),
            (8.0, "b"), (20.0, "f"),
        }

    def test_all_methods_agree_on_figure1(self, figure1, figure1_family):
        reference = build_ads_set(
            figure1, 2, family=figure1_family, method="pruned_dijkstra"
        )
        other = build_ads_set(
            figure1, 2, family=figure1_family, method="local_updates"
        )
        for v in figure1.nodes():
            assert _content(other[v]) == _content(reference[v])

    def test_hip_weights_by_hand(self, figure1, figure1_family):
        """Hand-check Lemma 5.1 on ADS(a), k=1: the threshold for each
        entry is the minimum rank among strictly closer scanned nodes."""
        ads_set = build_ads_set(figure1, 1, family=figure1_family)
        ranks = figure1_ranks()
        weights = ads_set["a"].hip_weights()
        # scan order: a (w=1), c (tau=r(a)=0.5), d (tau=min(0.5,0.4)=0.4),
        # h (tau=min(...,0.2)=0.2)
        assert weights == pytest.approx(
            [1.0, 1 / ranks["a"], 1 / ranks["c"], 1 / ranks["d"]]
        )

    def test_neighborhood_estimates_are_plausible(
        self, figure1, figure1_family
    ):
        ads_set = build_ads_set(figure1, 2, family=figure1_family)
        # n_10(a) = 3 (a, b, c) <= k is below sketch capacity... k=2, so
        # only the first 2 are exact; check monotonicity and finiteness.
        nf = ads_set["a"].neighborhood_function()
        values = [v for _, v in nf]
        assert values == sorted(values)
        assert values[-1] >= 4.0  # at least the entries themselves
