"""Cross-cutting structural properties (hypothesis-driven).

These tests pin down relationships *between* subsystems that no single
module test covers: stream/graph duality, ADS prefix consistency,
order-insensitivity of sketches, and coordination invariants.
"""


import pytest
from hypothesis import given, settings, strategies as st

from repro.ads import FirstOccurrenceStreamADS, build_ads_set
from repro.graph import gnp_random_graph, path_graph
from repro.rand.hashing import HashFamily
from repro.sketches import BottomKSketch, KMinsSketch, KPartitionSketch
from repro.streams import timestamped


class TestStreamGraphDuality:
    """Section 5.5: the ADS of a node depends only on the ranks of nodes
    in scan order.  A directed path graph scans nodes 0,1,2,... exactly
    like a stream that presents them in that order, so the graph ADS and
    the stream ADS must coincide."""

    @settings(max_examples=10, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_path_graph_ads_equals_stream_ads(self, k, seed):
        n = 60
        family = HashFamily(seed)
        graph = path_graph(n, directed=True)
        graph_ads = build_ads_set(graph, k, family=family)[0]

        stream_ads = FirstOccurrenceStreamADS(k, family)
        for element, t in timestamped(range(n)):
            stream_ads.add(element, t)

        assert [e.node for e in graph_ads.entries] == [
            e for e, _, _ in stream_ads.entries
        ]
        assert graph_ads.hip_weights() == pytest.approx(
            stream_ads.hip_weights()
        )
        # and the cardinality estimates agree at every prefix distance
        for d in (5.0, 20.0, float(n)):
            assert graph_ads.cardinality_at(d) == pytest.approx(
                stream_ads.distinct_count(up_to_time=d)
            )


class TestSketchOrderInsensitivity:
    """A MinHash sketch is a function of the *set*, not the insertion
    order; feeding any permutation of the elements must give the same
    sketch state."""

    @settings(max_examples=20, deadline=None)
    @given(
        elements=st.sets(st.integers(0, 10_000), min_size=1, max_size=60),
        order_seed=st.integers(0, 1_000),
        k=st.integers(min_value=1, max_value=8),
    )
    def test_bottomk(self, elements, order_seed, k):
        import random

        family = HashFamily(4)
        forward = BottomKSketch(k, family)
        forward.update(sorted(elements))
        shuffled = sorted(elements)
        random.Random(order_seed).shuffle(shuffled)
        other = BottomKSketch(k, family)
        other.update(shuffled)
        assert forward.entries() == other.entries()

    @settings(max_examples=15, deadline=None)
    @given(
        elements=st.sets(st.integers(0, 10_000), min_size=1, max_size=40),
        order_seed=st.integers(0, 1_000),
    )
    def test_kmins_and_kpartition(self, elements, order_seed):
        import random

        family = HashFamily(4)
        shuffled = sorted(elements)
        random.Random(order_seed).shuffle(shuffled)
        for cls in (KMinsSketch, KPartitionSketch):
            a = cls(6, family)
            b = cls(6, family)
            a.update(sorted(elements))
            b.update(shuffled)
            assert a.minima == b.minima


class TestAdsPrefixConsistency:
    """The ADS restricted to entries within distance d must contain the
    full bottom-k MinHash sketch of N_d(v) -- for *every* d at once
    (the defining 'all distances' property, Section 2)."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 5_000), k=st.integers(2, 6))
    def test_every_prefix_holds_a_sketch(self, seed, k):
        from repro.graph.traversal import bfs_distances

        graph = gnp_random_graph(50, 0.08, seed=seed)
        family = HashFamily(seed + 1)
        ads = build_ads_set(graph, k, family=family)[0]
        dist = bfs_distances(graph, 0)
        for d in sorted(set(dist.values())):
            direct = BottomKSketch(k, family)
            direct.update(u for u, du in dist.items() if du <= d)
            assert ads.minhash_at(d) == direct.entries()


class TestHipWeightTelescoping:
    """HIP estimates at nested distances are themselves nested: the
    estimate is a running prefix sum of nonnegative weights, hence
    monotone in d, and exactly len(prefix) while the prefix fits in k."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5_000), k=st.integers(2, 8))
    def test_monotone_and_exact_prefix(self, seed, k):
        import random

        rng = random.Random(seed)
        from repro.estimators.hip import bottom_k_adjusted_weights

        ranks = [rng.random() for _ in range(100)]
        # simulate ADS entries of a stream (prefix bottom-k membership)
        import heapq

        heap, entry_ranks = [], []
        for r in ranks:
            if len(heap) < k:
                heapq.heappush(heap, -r)
                entry_ranks.append(r)
            elif r < -heap[0]:
                heapq.heapreplace(heap, -r)
                entry_ranks.append(r)
        weights = bottom_k_adjusted_weights(entry_ranks, k)
        prefix_sums = []
        total = 0.0
        for w in weights:
            total += w
            prefix_sums.append(total)
        assert prefix_sums == sorted(prefix_sums)
        assert prefix_sums[: k] == pytest.approx(
            list(range(1, min(k, len(prefix_sums)) + 1))
        )


class TestCoordinationInvariance:
    """Sketches of the same node across different graphs that share a
    neighborhood agree on that neighborhood: coordination is a property
    of the hash family, not the build."""

    def test_shared_prefix_same_sketch(self, family):
        # two graphs identical within distance 2 of node 0
        base = path_graph(6, directed=True)
        extended = path_graph(12, directed=True)
        ads_a = build_ads_set(base, 3, family=family)[0]
        ads_b = build_ads_set(extended, 3, family=family)[0]
        assert ads_a.minhash_at(2.0) == ads_b.minhash_at(2.0)
        assert ads_a.cardinality_at(2.0) == ads_b.cardinality_at(2.0)


class TestEffectiveDiameterEstimate:
    def test_matches_exact_on_paths(self, family):
        from repro.centrality import effective_diameter_estimate
        from repro.graph.properties import effective_diameter

        graph = path_graph(40)
        ads_set = build_ads_set(graph, 16, family=family)
        estimate = effective_diameter_estimate(ads_set, 0.9)
        exact = effective_diameter(graph, 0.9)
        assert estimate == pytest.approx(exact, rel=0.25)

    def test_quantile_validated(self, family):
        from repro.centrality import effective_diameter_estimate
        from repro.errors import ParameterError

        graph = path_graph(5)
        ads_set = build_ads_set(graph, 4, family=family)
        with pytest.raises(ParameterError):
            effective_diameter_estimate(ads_set, 0.0)
