"""Tests for rank assignments (uniform, exponential, base-b, permutation)."""

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.rand.hashing import HashFamily
from repro.rand.ranks import (
    BaseBRanks,
    ExponentialRanks,
    PermutationRanks,
    UniformRanks,
    discretize_rank,
    rounded_rank_value,
)


class TestDiscretizeRank:
    def test_exact_powers(self):
        assert discretize_rank(0.5, 2.0) == 1
        assert discretize_rank(0.25, 2.0) == 2
        assert discretize_rank(0.125, 2.0) == 3

    def test_brackets(self):
        assert discretize_rank(0.3, 2.0) == 2   # 0.25 <= 0.3 < 0.5
        assert discretize_rank(0.7, 2.0) == 1   # 0.5 <= 0.7 < 1
        assert discretize_rank(0.9999, 2.0) == 1

    def test_other_bases(self):
        assert discretize_rank(0.4, math.sqrt(2.0)) == 3  # 2^-1.5 ~ 0.3536
        assert discretize_rank(0.3, 10.0) == 1

    def test_domain_errors(self):
        with pytest.raises(ParameterError):
            discretize_rank(0.0, 2.0)
        with pytest.raises(ParameterError):
            discretize_rank(1.0, 2.0)
        with pytest.raises(ParameterError):
            discretize_rank(0.5, 1.0)

    @given(st.floats(min_value=1e-12, max_value=1 - 1e-12),
           st.floats(min_value=1.01, max_value=16.0))
    def test_bracket_invariant(self, r, b):
        h = discretize_rank(r, b)
        assert b ** (-h) <= r < b ** (-(h - 1)) or h == 1

    def test_geometric_register_law(self):
        fam = HashFamily(42)
        ranks = BaseBRanks(fam, 2.0)
        n = 100_000
        ones = sum(1 for i in range(n) if ranks.register(i) == 1)
        twos = sum(1 for i in range(n) if ranks.register(i) == 2)
        assert ones / n == pytest.approx(0.5, abs=0.01)
        assert twos / n == pytest.approx(0.25, abs=0.01)


class TestRoundedRankValue:
    def test_values(self):
        assert rounded_rank_value(1, 2.0) == 0.5
        assert rounded_rank_value(3, 2.0) == 0.125

    def test_errors(self):
        with pytest.raises(ParameterError):
            rounded_rank_value(-1, 2.0)


class TestUniformRanks:
    def test_coordination(self):
        a = UniformRanks(HashFamily(9))
        b = UniformRanks(HashFamily(9))
        assert [a.rank(i) for i in range(50)] == [b.rank(i) for i in range(50)]

    def test_index_gives_new_permutation(self):
        fam = HashFamily(9)
        a = UniformRanks(fam, index=0)
        b = UniformRanks(fam, index=1)
        assert a.rank(123) != b.rank(123)

    def test_sup(self):
        assert UniformRanks(HashFamily(0)).sup == 1.0


class TestExponentialRanks:
    def test_unweighted_matches_transform(self):
        fam = HashFamily(4)
        exp_ranks = ExponentialRanks(fam)
        uni = UniformRanks(fam)
        for i in range(100):
            assert exp_ranks.rank(i) == pytest.approx(
                -math.log1p(-uni.rank(i))
            )

    def test_weight_scales_rank_down(self):
        fam = HashFamily(4)
        heavy = ExponentialRanks(fam, weight=lambda _: 10.0)
        light = ExponentialRanks(fam, weight=lambda _: 1.0)
        for i in range(50):
            assert heavy.rank(i) == pytest.approx(light.rank(i) / 10.0)

    def test_mean_is_inverse_rate(self):
        fam = HashFamily(8)
        ranks = ExponentialRanks(fam, weight=lambda _: 4.0)
        mean = statistics.mean(ranks.rank(i) for i in range(100_000))
        assert mean == pytest.approx(0.25, rel=0.02)

    def test_nonpositive_weight_rejected(self):
        ranks = ExponentialRanks(HashFamily(0), weight=lambda _: 0.0)
        with pytest.raises(ParameterError):
            ranks.rank(1)

    def test_sup_is_infinite(self):
        assert math.isinf(ExponentialRanks(HashFamily(0)).sup)


class TestBaseBRanks:
    def test_rank_is_power_of_inverse_base(self):
        ranks = BaseBRanks(HashFamily(2), 2.0)
        for i in range(200):
            r = ranks.rank(i)
            h = ranks.register(i)
            assert r == 2.0 ** (-h)

    def test_saturation(self):
        ranks = BaseBRanks(HashFamily(2), 2.0, max_register=3)
        assert all(ranks.register(i) <= 3 for i in range(1000))

    def test_rank_order_preserved_coarsely(self):
        fam = HashFamily(2)
        rounded = BaseBRanks(fam, 2.0)
        uni = UniformRanks(fam)
        for i in range(500):
            # rounded rank never exceeds the full rank's bracket top
            assert rounded.rank(i) <= uni.rank(i) * 2.0

    def test_invalid_base(self):
        with pytest.raises(ParameterError):
            BaseBRanks(HashFamily(0), 1.0)


class TestPermutationRanks:
    def test_is_a_permutation(self):
        perm = PermutationRanks(range(100), seed=5)
        values = sorted(perm.rank(i) for i in range(100))
        assert values == [float(v) for v in range(1, 101)]

    def test_sup(self):
        assert PermutationRanks(range(10), seed=0).sup == 11.0

    def test_unknown_item(self):
        perm = PermutationRanks(range(10), seed=0)
        with pytest.raises(KeyError):
            perm.rank(99)

    def test_duplicates_rejected(self):
        with pytest.raises(ParameterError):
            PermutationRanks([1, 1, 2], seed=0)

    def test_seed_changes_order(self):
        a = PermutationRanks(range(50), seed=1)
        b = PermutationRanks(range(50), seed=2)
        assert any(a.rank(i) != b.rank(i) for i in range(50))
