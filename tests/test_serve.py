"""The ``repro.serve`` layer: server endpoints, cache, client, wiring.

A real server is bound to a loopback port once per module *per
transport* (the module-scoped ``server`` fixture is parametrized over
the threaded ``AdsServer`` and the asyncio ``AsyncAdsServer``) and
exercised through :class:`repro.serve.client.QueryClient` -- the same
wire path production traffic takes.  Estimates returned over HTTP must
equal the in-process ``AdsIndex`` queries exactly (JSON round-trips
IEEE doubles losslessly via repr-level serialisation), on either
transport.
"""

import json
import socket
import threading
import time
import urllib.request

import pytest

from repro.ads import AdsIndex
from repro.errors import ParameterError
from repro.estimators.statistics import harmonic_kernel
from repro.graph import barabasi_albert_graph
from repro.rand.hashing import HashFamily
from repro.serve import (
    AdsServer,
    AsyncAdsServer,
    LruCache,
    QueryClient,
    ServeClientError,
)
from repro.serve.schemas import WireError, centrality_kwargs, resolve_node


@pytest.fixture(scope="module")
def index():
    graph = barabasi_albert_graph(120, 3, seed=21).to_csr()
    return AdsIndex.build(graph, 8, family=HashFamily(4))


@pytest.fixture(scope="module", params=["threaded", "async", "cluster"])
def server(index, request):
    # Every endpoint/error/concurrency test in this module runs against
    # all three deployment flavors: both single-server transports share
    # routing via handle_request, and the sharded cluster router must
    # answer the identical API byte-for-byte (exact merges, worker
    # passthrough) -- this fixture is what holds all of them to it.
    if request.param == "cluster":
        from cluster_harness import start_cluster

        with start_cluster(index, workers=2, cache_size=16) as cluster:
            yield cluster
        return
    if request.param == "async":
        factory = AsyncAdsServer(index, port=0, cache_size=16)
    else:
        factory = AdsServer(index, port=0, cache_size=16, threads=4)
    with factory as running:
        yield running


@pytest.fixture()
def client(server):
    with QueryClient(server.url) as running:
        yield running


class TestHappyPath:
    def test_healthz(self, client, index):
        # saturation is the load-balancer steering signal; idle servers
        # report 0.0 on either transport.
        assert client.healthz() == {
            "status": "ok", "nodes": index.num_nodes, "saturation": 0.0
        }

    def test_single_node_cardinality_matches_index(self, client, index):
        response = client.cardinality(node=5, d=2.0)
        assert response["node"] == 5
        assert response["value"] == index.node_cardinality_at(5, 2.0)

    def test_all_nodes_cardinality_matches_index(self, client, index):
        response = client.cardinality(d=2.0)
        assert dict(
            (label, value) for label, value in response["results"]
        ) == index.cardinality_at(2.0)

    def test_batch_cardinality(self, client, index):
        nodes = [0, 7, 23, 119]
        response = client.cardinality_batch(nodes, d=3.0)
        assert response["results"] == [
            [label, index.node_cardinality_at(label, 3.0)]
            for label in nodes
        ]

    def test_default_d_is_infinite_reach(self, client, index):
        response = client.cardinality(node=9)
        assert response["d"] is None  # JSON null encodes the inf default
        assert response["value"] == index.node_cardinality_at(9)

    def test_negative_infinity_d_travels(self, client):
        # -inf must reach the server (an empty threshold), not silently
        # widen to the all-reachable default.
        import math

        assert client.cardinality(node=9, d=-math.inf)["value"] == 0.0
        batch = client.cardinality_batch([1, 2], d=-math.inf)
        assert [value for _, value in batch["results"]] == [0.0, 0.0]

    def test_closeness_kinds_match_index(self, client, index):
        classic = client.closeness(node=11, kind="classic")
        assert classic["value"] == index.node_closeness_centrality(
            11, classic=True
        )
        harmonic = client.closeness(node=11, kind="harmonic")
        assert harmonic["value"] == index.node_closeness_centrality(
            11, alpha=harmonic_kernel()
        )

    def test_batch_closeness(self, client, index):
        response = client.closeness_batch([1, 2], kind="classic")
        assert response["results"] == [
            [1, index.node_closeness_centrality(1, classic=True)],
            [2, index.node_closeness_centrality(2, classic=True)],
        ]

    def test_neighborhood_series(self, client, index):
        whole = client.neighborhood()
        assert whole["series"] == [
            [d, value] for d, value in index.neighborhood_function()
        ]
        one = client.neighborhood(node=17)
        assert one["series"] == [
            [d, value]
            for d, value in index.node_neighborhood_function(17)
        ]

    def test_top_central(self, client, index):
        response = client.top_central(count=5, kind="harmonic")
        assert response["results"] == [
            [label, value]
            for label, value in index.top_central(
                5, alpha=harmonic_kernel()
            )
        ]

    def test_node_summary(self, client, index):
        response = client.node(42)
        lo, hi = index._slice(42)
        assert response["node"] == 42
        assert response["sketch_size"] == hi - lo
        assert response["reachable"] == index.node_cardinality_at(42)

    def test_string_label_coerces_to_int_index_label(self, client, index):
        # HTTP query strings are text; the index stores ints.
        assert client.cardinality(node="5", d=2.0)["node"] == 5

    def test_stats_shape(self, client, index):
        stats = client.stats()
        assert stats["index"]["nodes"] == index.num_nodes
        assert stats["index"]["entries"] == index.num_entries
        assert stats["index"]["mmap"] is False
        assert stats["requests"] >= 1
        assert set(stats["cache"]) == {
            "hits", "misses", "evictions", "size", "capacity"
        }
        assert stats["transport"]["mode"] in ("threaded", "async")
        assert stats["transport"]["load_shed"] == 0

    def test_uptime_is_monotonic_not_wall_clock(self, client, server):
        # started_at must come from time.monotonic(): a wall-clock
        # epoch would make this difference ~1.7 billion seconds (and a
        # backwards NTP step would make /stats uptime negative).
        assert 0.0 <= time.monotonic() - server.started_at < 600.0
        assert client.stats()["uptime_seconds"] >= 0.0


class TestErrors:
    def test_unknown_node_is_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.cardinality(node=99999)
        assert excinfo.value.status == 404

    def test_unknown_node_in_batch_is_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.cardinality_batch([1, 99999])
        assert excinfo.value.status == 404

    def test_unknown_node_summary_is_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.node("nope")
        assert excinfo.value.status == 404

    def test_blank_node_param_is_404_not_full_sweep(self, client):
        # parse_qs would drop "node=" entirely without
        # keep_blank_values, silently answering the all-nodes sweep.
        for endpoint in ("/cardinality", "/closeness", "/neighborhood"):
            with pytest.raises(ServeClientError) as excinfo:
                client._request("GET", endpoint + "?node=")
            assert excinfo.value.status == 404

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client._request("GET", "/no-such-endpoint")
        assert excinfo.value.status == 404

    @pytest.mark.parametrize("params", [
        {"d": "two"},
        {"d": "nan"},
        {"node": "5", "d": "x"},
    ])
    def test_malformed_cardinality_params_are_400(
        self, client, params
    ):
        with pytest.raises(ServeClientError) as excinfo:
            client._request("GET", "/cardinality", params=params)
        assert excinfo.value.status == 400

    @pytest.mark.parametrize("params", [
        {"kind": "bogus"},
        {"kind": "decay", "half_life": "0"},
        {"count": "0"},
        {"count": "x"},
        {"largest": "maybe"},
    ])
    def test_malformed_top_central_params_are_400(self, client, params):
        with pytest.raises(ServeClientError) as excinfo:
            client._request("GET", "/top-central", params=params)
        assert excinfo.value.status == 400

    @pytest.mark.parametrize("payload", [
        {},                          # nodes missing
        {"nodes": []},               # empty batch
        {"nodes": 5},                # not a list
        {"nodes": [1], "d": "x"},    # non-numeric d
        {"nodes": [None]},           # unresolvable label shape
        {"nodes": [[1], 2]},         # unhashable label must be a 400
        {"nodes": [{"a": 1}]},       # ... not an internal error
        {"nodes": [True]},           # bools are not labels
    ])
    def test_malformed_batch_bodies_are_400(self, client, payload):
        with pytest.raises(ServeClientError) as excinfo:
            client._request("POST", "/cardinality", payload=payload)
        assert excinfo.value.status == 400

    def test_non_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/cardinality", data=b"this is not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert "error" in json.load(excinfo.value)

    def test_post_to_get_only_endpoint_is_400(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client._request("POST", "/top-central", payload={"count": 3})
        assert excinfo.value.status == 400

    def test_malformed_requests_do_not_count_as_internal_errors(
        self, client
    ):
        with pytest.raises(ServeClientError):
            client._request("POST", "/cardinality",
                            payload={"nodes": [[1]]})
        assert client.stats()["internal_errors"] == 0


class TestCaching:
    def test_repeat_whole_graph_query_hits_cache(self, index):
        with AdsServer(index, port=0, cache_size=8) as server:
            with QueryClient(server.url) as client:
                first = client.top_central(count=4)
                assert first["cached"] is False
                second = client.top_central(count=4)
                assert second["cached"] is True
                assert second["results"] == first["results"]
                stats = client.stats()["cache"]
                assert stats["hits"] == 1
                assert stats["misses"] == 1

    def test_distinct_params_are_distinct_entries(self, index):
        with AdsServer(index, port=0, cache_size=8) as server:
            with QueryClient(server.url) as client:
                client.closeness(kind="classic")
                client.closeness(kind="harmonic")
                assert client.stats()["cache"]["misses"] == 2

    def test_finite_d_sweeps_are_not_cached(self, index):
        # d is a continuous parameter: caching every threshold would
        # let a d-sweeping client pin cache-size O(n) lists in RAM.
        # Only the default all-reachable sweep is memoised.
        with AdsServer(index, port=0, cache_size=8) as server:
            with QueryClient(server.url) as client:
                assert client.cardinality(d=2.0)["cached"] is False
                assert client.cardinality(d=2.0)["cached"] is False
                client.cardinality()
                assert client.cardinality()["cached"] is True

    def test_equivalent_spellings_share_one_entry(self, index):
        # Keys are parsed values: "?d=inf" == the omitted default, and
        # explicit defaults == omitted defaults.
        with AdsServer(index, port=0, cache_size=8) as server:
            with QueryClient(server.url) as client:
                client._request("GET", "/cardinality")
                assert client._request(
                    "GET", "/cardinality?d=inf"
                )["cached"] is True
                client._request("GET", "/top-central")
                assert client._request(
                    "GET",
                    "/top-central?count=10&kind=classic&largest=true",
                )["cached"] is True

    def test_cache_size_zero_disables(self, index):
        with AdsServer(index, port=0, cache_size=0) as server:
            with QueryClient(server.url) as client:
                client.neighborhood()
                assert client.neighborhood()["cached"] is False


class TestLruCache:
    def test_eviction_order(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.stats()["evictions"] == 1

    def test_capacity_zero_never_stores(self):
        cache = LruCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        value, hit = cache.get_or_compute("a", lambda: 7)
        assert (value, hit) == (7, False)
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ParameterError):
            LruCache(-1)

    def test_get_or_compute_caches(self):
        cache = LruCache(4)
        calls = []
        compute = lambda: calls.append(1) or 42  # noqa: E731
        assert cache.get_or_compute("k", compute) == (42, False)
        assert cache.get_or_compute("k", compute) == (42, True)
        assert len(calls) == 1


class TestSchemas:
    def test_centrality_kwargs_mirror_cli(self):
        assert centrality_kwargs({}) == {"classic": True}
        assert centrality_kwargs({"kind": "distsum"}) == {}
        assert "alpha" in centrality_kwargs({"kind": "harmonic"})
        with pytest.raises(WireError):
            centrality_kwargs({"kind": "pagerank"})

    def test_resolve_node_coercion(self, index):
        assert resolve_node(index, 5) == 5
        assert resolve_node(index, "5") == 5
        with pytest.raises(WireError) as excinfo:
            resolve_node(index, "missing")
        assert excinfo.value.status == 404
        with pytest.raises(WireError) as excinfo:
            resolve_node(index, True)
        assert excinfo.value.status == 400


class TestKeepAliveHygiene:
    def test_oversized_post_closes_the_connection(self, server):
        # The 9 MB body is never read; keeping the socket alive would
        # feed it to the parser as the next request line.
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as raw:
            raw.sendall(
                b"POST /cardinality HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: 9000000\r\n\r\n"
            )
            raw.settimeout(10)
            head = raw.recv(4096).decode("latin-1")
            assert " 400 " in head.splitlines()[0]
            assert "connection: close" in head.lower()

    def test_client_recovers_after_refused_post(self, server):
        with QueryClient(server.url) as client:
            with pytest.raises(ServeClientError) as excinfo:
                client._request("POST", "/cardinality", payload=None)
            assert excinfo.value.status == 400
            assert client.healthz()["status"] == "ok"  # fresh socket

    def test_scheme_less_client_urls(self, server):
        for spelling in (f"{server.host}:{server.port}",
                         f"localhost:{server.port}"):
            with QueryClient(spelling) as client:
                assert client.healthz()["status"] == "ok"


class TestLifecycle:
    def test_start_then_immediate_shutdown(self, index):
        # __exit__ microseconds after start() must not strand the
        # accept loop or burn the join timeout.
        start = time.perf_counter()
        with AdsServer(index, port=0):
            pass
        assert time.perf_counter() - start < 4.0
    def test_shutdown_before_start_returns_promptly(self, index):
        # A bound-but-never-started server must tear down cleanly
        # instead of waiting on the serve_forever handshake.
        server = AdsServer(index, port=0)
        server.shutdown()

    def test_close_is_public_and_idempotent(self, index):
        server = AdsServer(index, port=0)
        server.close()
        server.close()

    def test_port_reusable_after_shutdown(self, index):
        first = AdsServer(index, port=0)
        port = first.port
        first.shutdown()
        second = AdsServer(index, port=port)
        second.shutdown()


class TestConcurrency:
    def test_parallel_clients_agree(self, server, index):
        expected = index.node_cardinality_at(3, 2.0)
        results = []
        errors = []

        def worker():
            try:
                with QueryClient(server.url) as mine:
                    for _ in range(5):
                        results.append(
                            mine.cardinality(node=3, d=2.0)["value"]
                        )
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert results == [expected] * 30


class TestServerStateFaults:
    def test_vanished_shard_is_500_not_400(self, index, tmp_path):
        # An index file failing under a *valid* request is a server
        # fault: 500 + internal_errors, never "malformed request".
        layout = tmp_path / "layout"
        index.save(layout, shards=3)
        loaded = AdsIndex.load(layout, mmap=True)
        with AdsServer(loaded, port=0, cache_size=0) as server:
            with QueryClient(server.url) as client:
                for shard in layout.glob("shard-*.adsshd"):
                    shard.unlink()
                with pytest.raises(ServeClientError) as excinfo:
                    client.neighborhood()
                assert excinfo.value.status == 500
                assert "vanished" in excinfo.value.message
                assert client.stats()["internal_errors"] == 1


class TestThreadedLoadShedding:
    def test_full_worker_queue_sheds_with_503_not_reset(self, index):
        # One worker, queue capacity 1*8+16 = 24.  An idle connection
        # pins the worker on its read; 24 more fill the queue; the
        # next connection must get an explicit 503 + Retry-After --
        # never a bare reset, which clients read as a transport fault
        # and retry straight back into the overload.
        with AdsServer(index, port=0, threads=1) as server:
            held = []
            try:
                for _ in range(25):
                    held.append(socket.create_connection(
                        (server.host, server.port), timeout=10
                    ))
                time.sleep(0.3)  # let the worker dequeue one connection
                deadline = time.monotonic() + 10
                head = ""
                while time.monotonic() < deadline:
                    shed = socket.create_connection(
                        (server.host, server.port), timeout=10
                    )
                    held.append(shed)
                    shed.settimeout(5)
                    try:
                        head = shed.recv(4096).decode("latin-1")
                    except (socket.timeout, ConnectionResetError):
                        head = ""
                    if head:
                        break
                assert " 503 " in head.splitlines()[0]
                assert "retry-after: 1" in head.lower()
                assert "overloaded" in head
            finally:
                for conn in held:
                    conn.close()
            # The queue drains (EOF per closed connection) and the shed
            # counter survives in /stats.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                try:
                    with QueryClient(server.url, timeout=5) as client:
                        if client.stats()["transport"]["load_shed"] >= 1:
                            return
                except ServeClientError:
                    pass
                time.sleep(0.1)
            pytest.fail("load_shed never surfaced in /stats")


class _ScriptedServer(threading.Thread):
    """A raw-socket HTTP stand-in that can kill connections on cue.

    ``kill_on`` names request-line prefixes to kill: the server reads
    the FULL request (headers + Content-Length body) -- as a real
    server that applied the batch would have -- and then closes the
    connection without responding, exactly the failure mode that made
    the old client double-apply `/update` batches.  Each prefix kills
    only once; later matches are served normally.
    """

    def __init__(self, kill_on=()):
        super().__init__(daemon=True)
        self.sock = socket.create_server(("127.0.0.1", 0))
        self.port = self.sock.getsockname()[1]
        self.requests = []
        self._kill_on = list(kill_on)
        self._lock = threading.Lock()

    def url(self):
        return f"http://127.0.0.1:{self.port}"

    def run(self):
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def close(self):
        self.sock.close()

    def _read_request(self, conn):
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(65536)
            if not chunk:
                return None
            data += chunk
        head, _, rest = data.partition(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value)
        while len(rest) < length:
            rest += conn.recv(65536)
        return head.split(b"\r\n")[0].decode("latin-1")

    def _handle(self, conn):
        while True:
            line = self._read_request(conn)
            if line is None:
                conn.close()
                return
            with self._lock:
                self.requests.append(line)
                kill = next(
                    (p for p in self._kill_on if line.startswith(p)),
                    None,
                )
                if kill is not None:
                    self._kill_on.remove(kill)
            if kill is not None:
                # Fully read, then die before the response line -- the
                # request may have been applied server-side.
                conn.close()
                return
            body = b'{"status": "ok"}'
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"\r\n" + body
            )


class TestClientRetrySemantics:
    def test_update_killed_mid_flight_is_not_replayed(self):
        # THE regression: a fully-sent POST /update whose connection
        # dies before the response may already be applied; replaying
        # it would double-apply the edge batch.  The client must raise
        # instead, and the wire must carry the update exactly once.
        scripted = _ScriptedServer(kill_on=["POST /update"])
        scripted.start()
        try:
            with QueryClient(scripted.url()) as client:
                client.healthz()  # establish the keep-alive socket
                with pytest.raises(ServeClientError) as excinfo:
                    client.update([[0, 1]])
                assert excinfo.value.status is None
                assert "may already be applied" in excinfo.value.message
            time.sleep(0.2)
            sent = [r for r in scripted.requests
                    if r.startswith("POST /update")]
            assert len(sent) == 1
        finally:
            scripted.close()

    def test_compact_killed_mid_flight_is_not_replayed(self):
        scripted = _ScriptedServer(kill_on=["POST /compact"])
        scripted.start()
        try:
            with QueryClient(scripted.url()) as client:
                client.healthz()
                with pytest.raises(ServeClientError):
                    client.compact()
            time.sleep(0.2)
            sent = [r for r in scripted.requests
                    if r.startswith("POST /compact")]
            assert len(sent) == 1
        finally:
            scripted.close()

    def test_get_killed_mid_flight_is_retried(self):
        # Reads are idempotent: the same failure mode must transparently
        # replay on a fresh socket and succeed.
        scripted = _ScriptedServer(kill_on=["GET /stats"])
        scripted.start()
        try:
            with QueryClient(scripted.url()) as client:
                client.healthz()
                assert client.stats() == {"status": "ok"}
            sent = [r for r in scripted.requests
                    if r.startswith("GET /stats")]
            assert len(sent) == 2
        finally:
            scripted.close()

    def test_idempotent_post_batch_is_retried(self):
        # POST /cardinality is a pure read; it retries like a GET.
        scripted = _ScriptedServer(kill_on=["POST /cardinality"])
        scripted.start()
        try:
            with QueryClient(scripted.url()) as client:
                client.healthz()
                assert client.cardinality_batch([1, 2]) == {
                    "status": "ok"
                }
            sent = [r for r in scripted.requests
                    if r.startswith("POST /cardinality")]
            assert len(sent) == 2
        finally:
            scripted.close()

    def test_update_against_real_server_applies_exactly_once(
        self, tmp_path
    ):
        # End-to-end sanity on the real stack: a clean update applies
        # once and the pending-batch counter agrees.
        from repro.graph import path_graph

        graph = path_graph(6).to_csr()
        built = AdsIndex.build(graph, k=4)
        with AdsServer(built, port=0, graph=graph) as server:
            with QueryClient(server.url) as client:
                before = client.stats()["updates"]["applied_batches"]
                client.update([[0, 5]])
                after = client.stats()["updates"]
                assert after["applied_batches"] == before + 1


class _SheddingServer(threading.Thread):
    """A raw-socket stand-in that sheds the first *sheds* requests.

    Each shed is a full ``503 {"error": "overloaded"}`` response with
    a ``Retry-After`` header -- exactly what the real server emits
    when its worker queue is full -- then it recovers and serves 200s.
    """

    def __init__(self, sheds, retry_after="0.01"):
        super().__init__(daemon=True)
        self.sock = socket.create_server(("127.0.0.1", 0))
        self.port = self.sock.getsockname()[1]
        self.requests = 0
        self._sheds = sheds
        self._retry_after = retry_after
        self._lock = threading.Lock()

    def url(self):
        return f"http://127.0.0.1:{self.port}"

    def run(self):
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def close(self):
        self.sock.close()

    def _handle(self, conn):
        with conn:
            while True:
                data = b""
                while b"\r\n\r\n" not in data:
                    chunk = conn.recv(65536)
                    if not chunk:
                        return
                    data += chunk
                with self._lock:
                    self.requests += 1
                    shed = self.requests <= self._sheds
                if shed:
                    body = b'{"error": "overloaded"}'
                    conn.sendall(
                        b"HTTP/1.1 503 Service Unavailable\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Retry-After: "
                        + self._retry_after.encode() + b"\r\n"
                        b"Content-Length: "
                        + str(len(body)).encode() + b"\r\n\r\n" + body
                    )
                else:
                    body = b'{"status": "ok"}'
                    conn.sendall(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: "
                        + str(len(body)).encode() + b"\r\n\r\n" + body
                    )


class TestRetriesOnShed:
    def test_shed_propagates_by_default(self):
        # Opt-in semantics: without retries_on_shed a 503 surfaces
        # immediately -- existing callers keep their own backoff.
        shedding = _SheddingServer(sheds=1)
        shedding.start()
        try:
            with QueryClient(shedding.url()) as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.healthz()
                assert excinfo.value.status == 503
                assert excinfo.value.retry_after == 0.01
            assert shedding.requests == 1
        finally:
            shedding.close()

    def test_retries_honor_retry_after_then_succeed(self):
        shedding = _SheddingServer(sheds=2)
        shedding.start()
        try:
            with QueryClient(
                shedding.url(), retries_on_shed=3
            ) as client:
                assert client.healthz() == {"status": "ok"}
            assert shedding.requests == 3  # 2 sheds + 1 success
        finally:
            shedding.close()

    def test_retry_after_is_capped(self):
        # A server asking for an hour of backoff must not stall the
        # client: the sleep is clamped to max_retry_after.
        shedding = _SheddingServer(sheds=1, retry_after="3600")
        shedding.start()
        try:
            started = time.monotonic()
            with QueryClient(
                shedding.url(), retries_on_shed=1, max_retry_after=0.05
            ) as client:
                assert client.healthz() == {"status": "ok"}
            assert time.monotonic() - started < 5.0
        finally:
            shedding.close()

    def test_budget_exhausted_raises_the_503(self):
        shedding = _SheddingServer(sheds=10)
        shedding.start()
        try:
            with QueryClient(
                shedding.url(), retries_on_shed=2
            ) as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.healthz()
                assert excinfo.value.status == 503
            assert shedding.requests == 3  # initial try + 2 retries
        finally:
            shedding.close()

    def test_writes_also_retry_sheds_safely(self):
        # A shed is sent *instead of* dispatching the request, so
        # retrying a POST /update after a 503 can never double-apply.
        shedding = _SheddingServer(sheds=1)
        shedding.start()
        try:
            with QueryClient(
                shedding.url(), retries_on_shed=2
            ) as client:
                assert client.update([[0, 1]]) == {"status": "ok"}
            assert shedding.requests == 2
        finally:
            shedding.close()


class TestServingMmapIndex:
    def test_server_over_lazily_loaded_layout(self, index, tmp_path):
        layout = tmp_path / "layout"
        index.save(layout, shards=3)
        loaded = AdsIndex.load(layout, mmap=True)
        with AdsServer(loaded, port=0) as server:
            with QueryClient(server.url) as client:
                stats = client.stats()["index"]
                assert stats["mmap"] is True
                assert stats["mapped_shards"] == 0
                value = client.cardinality(node=2, d=2.0)["value"]
                assert value == index.node_cardinality_at(2, 2.0)
                assert client.stats()["index"]["mapped_shards"] == 1
                top = client.top_central(count=3)["results"]
                assert top == [
                    [label, v]
                    for label, v in index.top_central(3, classic=True)
                ]
