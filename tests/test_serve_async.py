"""The asyncio transport: pipelining, parser edges, backpressure,
coalescing, and byte-identity with the threaded server.

The endpoint behaviour itself is covered by ``test_serve.py`` (its
server fixture is parametrized over both transports); this module
exercises what only the async transport does -- the hand-rolled
pipelined parser with hostile and fragmented input, bounded in-flight
load shedding, micro-batch coalescing -- plus the acceptance contract
that every endpoint's *payload bytes* are identical across transports
and across the JSON/binary codecs.
"""

import concurrent.futures
import json
import socket
import time

import pytest

from repro.ads import AdsIndex
from repro.errors import ParameterError
from repro.graph import barabasi_albert_graph, path_graph
from repro.rand.hashing import HashFamily
from repro.serve import (
    AdsServer,
    AsyncAdsServer,
    QueryClient,
    ServeClientError,
)
from repro.serve import wire


@pytest.fixture(scope="module")
def index():
    graph = barabasi_albert_graph(80, 3, seed=13).to_csr()
    return AdsIndex.build(graph, 8, family=HashFamily(4))


@pytest.fixture(scope="module")
def server(index):
    with AsyncAdsServer(index, port=0, cache_size=16) as running:
        yield running


def raw_exchange(server, request: bytes, expect: int = 1,
                 timeout: float = 10.0) -> bytes:
    """Send raw bytes, read until *expect* responses (or EOF)."""
    with socket.create_connection(
        (server.host, server.port), timeout=timeout
    ) as conn:
        conn.sendall(request)
        conn.settimeout(timeout)
        data = b""
        while data.count(b"HTTP/1.1 ") < expect:
            try:
                chunk = conn.recv(65536)
            except socket.timeout:
                break
            if not chunk:
                break
            data += chunk
        return data


def split_responses(data: bytes):
    """Parse Content-Length-framed responses into (status, body) pairs."""
    out = []
    rest = data
    while rest:
        head, sep, rest = rest.partition(b"\r\n\r\n")
        if not sep:
            break
        status = int(head.split(b" ", 2)[1])
        length = 0
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value)
        out.append((status, rest[:length]))
        rest = rest[length:]
    return out


class TestPipelining:
    def test_many_requests_in_one_segment_answered_in_order(
        self, server, index
    ):
        nodes = list(range(10))
        request = b"".join(
            f"GET /cardinality?node={n}&d=2.0 HTTP/1.1\r\n"
            f"Host: x\r\n\r\n".encode()
            for n in nodes
        )
        responses = split_responses(
            raw_exchange(server, request, expect=len(nodes))
        )
        assert [status for status, _ in responses] == [200] * len(nodes)
        payloads = [json.loads(body) for _, body in responses]
        # Ordering is the HTTP/1.1 pipelining contract: response i
        # answers request i.
        assert [p["node"] for p in payloads] == nodes
        assert [p["value"] for p in payloads] == [
            index.node_cardinality_at(n, 2.0) for n in nodes
        ]

    def test_pipelined_posts_with_bodies(self, server, index):
        body = json.dumps({"nodes": [1, 2], "d": 2.0}).encode()
        one = (
            b"POST /cardinality HTTP/1.1\r\nHost: x\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n"
            + body
        )
        responses = split_responses(raw_exchange(server, one * 3, expect=3))
        assert [status for status, _ in responses] == [200, 200, 200]
        expected = [
            [1, index.node_cardinality_at(1, 2.0)],
            [2, index.node_cardinality_at(2, 2.0)],
        ]
        for _, raw in responses:
            assert json.loads(raw)["results"] == expected

    def test_request_split_across_many_tcp_segments(self, server, index):
        # The parser must reassemble a request dribbled byte-group by
        # byte-group (each send is a separate segment with Nagle off).
        request = (
            b"GET /cardinality?node=3&d=2.0 HTTP/1.1\r\n"
            b"Host: x\r\nConnection: close\r\n\r\n"
        )
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            for i in range(0, len(request), 7):
                conn.sendall(request[i:i + 7])
                time.sleep(0.002)
            conn.settimeout(10)
            data = b""
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                data += chunk
        ((status, body),) = split_responses(data)
        assert status == 200
        assert json.loads(body)["value"] == (
            index.node_cardinality_at(3, 2.0)
        )

    def test_post_body_split_from_headers(self, server, index):
        payload = json.dumps({"nodes": [5], "d": 1.0}).encode()
        head = (
            b"POST /cardinality HTTP/1.1\r\nHost: x\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(payload)).encode()
            + b"\r\nConnection: close\r\n\r\n"
        )
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as conn:
            conn.sendall(head)
            time.sleep(0.05)  # body arrives later
            conn.sendall(payload)
            conn.settimeout(10)
            data = b""
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                data += chunk
        ((status, body),) = split_responses(data)
        assert status == 200
        assert json.loads(body)["results"] == [
            [5, index.node_cardinality_at(5, 1.0)]
        ]


class TestParserRefusals:
    @pytest.mark.parametrize("request_bytes,expected_status,needle", [
        (b"GARBAGE\r\n\r\n", 400, b"malformed request line"),
        (b"GET /healthz HTTP/2.0\r\n\r\n", 400, b"unsupported protocol"),
        (b"GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n", 400,
         b"malformed header"),
        (b"POST /update HTTP/1.1\r\nHost: x\r\n\r\n", 400,
         b"POST requires Content-Length"),
        (b"POST /update HTTP/1.1\r\nContent-Length: zz\r\n\r\n", 400,
         b"invalid Content-Length"),
        (b"POST /update HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400,
         b"invalid Content-Length"),
        (b"POST /update HTTP/1.1\r\nContent-Length: 9000000\r\n\r\n",
         400, b"request body too large"),
    ])
    def test_hostile_requests_get_explicit_errors(
        self, server, request_bytes, expected_status, needle
    ):
        data = raw_exchange(server, request_bytes)
        ((status, body),) = split_responses(data)
        assert status == expected_status
        assert needle in body
        # Refusals that may leave stream bytes unread must close.
        assert b"connection: close" in data.lower()

    def test_unsupported_method_is_501_keep_alive(self, server):
        # A bodyless DELETE leaves the stream aligned, so the
        # connection survives the refusal and serves the next request.
        request = (
            b"DELETE /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
            b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        responses = split_responses(raw_exchange(server, request, expect=2))
        assert [status for status, _ in responses] == [501, 200]
        assert b"not supported" in responses[0][1]

    def test_too_many_headers_refused(self, server):
        request = b"GET /healthz HTTP/1.1\r\n" + b"".join(
            f"X-H{i}: v\r\n".encode() for i in range(80)
        ) + b"\r\n"
        ((status, body),) = split_responses(raw_exchange(server, request))
        assert status == 400
        assert b"too many headers" in body

    def test_oversized_request_line_refused(self, server):
        request = b"GET /" + b"a" * 70000 + b" HTTP/1.1\r\n\r\n"
        ((status, body),) = split_responses(raw_exchange(server, request))
        assert status == 400
        assert b"request line too long" in body

    def test_half_request_then_eof_is_dropped_quietly(self, server):
        # A truncated request mid-line gets no response and no crash.
        data = raw_exchange(server, b"GET /healthz HT", expect=1,
                            timeout=1.0)
        assert data == b""
        with QueryClient(server.url) as client:  # server still alive
            assert client.healthz()["status"] == "ok"

    def test_get_with_body_keeps_the_stream_aligned(self, server):
        # A GET carrying Content-Length must have its body consumed,
        # or the body bytes would be parsed as the next request.
        request = (
            b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 5\r\n\r\nxxxxx"
            b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        responses = split_responses(raw_exchange(server, request, expect=2))
        assert [status for status, _ in responses] == [200, 200]

    def test_http10_defaults_to_close(self, server):
        data = raw_exchange(
            server, b"GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n"
        )
        ((status, _),) = split_responses(data)
        assert status == 200
        assert b"connection: close" in data.lower()


class TestBackpressure:
    def test_in_flight_cap_sheds_with_503_and_retry_after(self, index):
        # max_in_flight=1 with a coalescing window: the first query
        # parks in flight for the window, so a second concurrent
        # request must shed -- visibly, with Retry-After.
        with AsyncAdsServer(
            index, port=0, max_in_flight=1, coalesce_window=0.4
        ) as server:
            with socket.create_connection(
                (server.host, server.port), timeout=10
            ) as first:
                first.sendall(
                    b"GET /cardinality?node=0&d=2.0 HTTP/1.1\r\n"
                    b"Host: x\r\n\r\n"
                )
                time.sleep(0.1)  # ensure it is mid-window, in flight
                shed_raw = raw_exchange(
                    server,
                    b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
                )
                ((status, body),) = split_responses(shed_raw)
                assert status == 503
                assert b"retry-after: 1" in shed_raw.lower()
                assert b"overloaded" in body
                # The parked request still completes correctly.
                first.settimeout(10)
                data = b""
                while data.count(b"HTTP/1.1") < 1:
                    data += first.recv(65536)
                ((status, body),) = split_responses(data)
                assert status == 200
                assert json.loads(body)["value"] == (
                    index.node_cardinality_at(0, 2.0)
                )
            with QueryClient(server.url) as client:
                assert client.stats()["transport"]["load_shed"] == 1

    def test_client_surfaces_retry_after(self, index):
        with AsyncAdsServer(
            index, port=0, max_in_flight=1, coalesce_window=0.4
        ) as server:
            with socket.create_connection(
                (server.host, server.port), timeout=10
            ) as first:
                first.sendall(
                    b"GET /cardinality?node=0 HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                time.sleep(0.1)
                with QueryClient(server.url) as client:
                    with pytest.raises(ServeClientError) as excinfo:
                        client.healthz()
                    assert excinfo.value.status == 503
                    assert excinfo.value.retry_after == 1.0

    def test_saturation_reported_under_load(self, index):
        with AsyncAdsServer(
            index, port=0, max_in_flight=4, coalesce_window=0.4
        ) as server:
            with socket.create_connection(
                (server.host, server.port), timeout=10
            ) as parked:
                parked.sendall(
                    b"GET /cardinality?node=0 HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                time.sleep(0.1)
                with QueryClient(server.url) as client:
                    # One parked + the probe itself; saturation counts
                    # pressure beyond the probe: 1/4.
                    assert client.healthz()["saturation"] == 0.25

    def test_invalid_limits_rejected(self, index):
        with pytest.raises(ParameterError):
            AsyncAdsServer(index, max_in_flight=0)
        with pytest.raises(ParameterError):
            AsyncAdsServer(index, coalesce_window=-0.1)
        with pytest.raises(ParameterError):
            AsyncAdsServer(index, coalesce_max_batch=0)


class TestCoalescing:
    def test_coalesced_values_bit_identical_to_uncoalesced(self, index):
        nodes = list(range(40))
        with AsyncAdsServer(index, port=0) as plain:
            def query_plain(n):
                with QueryClient(plain.url) as client:
                    return client.cardinality(node=n, d=2.0)
            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                baseline = list(pool.map(query_plain, nodes))
        with AsyncAdsServer(
            index, port=0, coalesce_window=0.01
        ) as coalescing:
            def query_coalesced(n):
                with QueryClient(coalescing.url) as client:
                    return client.cardinality(node=n, d=2.0)
            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                coalesced = list(pool.map(query_coalesced, nodes))
            with QueryClient(coalescing.url) as client:
                transport = client.stats()["transport"]
        assert coalesced == baseline  # same payloads, field for field
        assert transport["coalesced_queries"] >= 2
        assert transport["coalesced_batches"] >= 1
        assert (
            transport["coalesced_batches"]
            < transport["coalesced_queries"]
        )

    def test_coalescing_groups_by_distinct_d(self, index):
        # Queries at different d thresholds must never share a kernel
        # call; each d gets its own bucket and its own exact answer.
        with AsyncAdsServer(
            index, port=0, coalesce_window=0.01
        ) as server:
            def query(args):
                node, d = args
                with QueryClient(server.url) as client:
                    return client.cardinality(node=node, d=d)["value"]
            jobs = [(n, float(d)) for n in range(8) for d in (1.0, 2.0)]
            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                values = list(pool.map(query, jobs))
        assert values == [
            index.node_cardinality_at(n, d) for n, d in jobs
        ]

    def test_sequential_client_unaffected_by_window(self, index):
        # A lone client pays the window as latency but must get the
        # same answers (and errors) as without coalescing.
        with AsyncAdsServer(
            index, port=0, coalesce_window=0.005
        ) as server:
            with QueryClient(server.url) as client:
                assert client.cardinality(node=4, d=2.0)["value"] == (
                    index.node_cardinality_at(4, 2.0)
                )
                with pytest.raises(ServeClientError) as excinfo:
                    client.cardinality(node=99999)
                assert excinfo.value.status == 404
                # Non-coalescable shapes route through handle_request.
                sweep = client.cardinality(d=2.0)
                assert len(sweep["results"]) == index.num_nodes

    def test_coalesce_max_batch_flushes_early(self, index):
        with AsyncAdsServer(
            index, port=0, coalesce_window=5.0, coalesce_max_batch=2
        ) as server:
            # Window is absurdly long: only the max-batch flush can
            # answer within the timeout.
            def query(n):
                with QueryClient(server.url, timeout=10) as client:
                    return client.cardinality(node=n, d=2.0)["value"]
            with concurrent.futures.ThreadPoolExecutor(2) as pool:
                start = time.monotonic()
                values = list(pool.map(query, [0, 1]))
                elapsed = time.monotonic() - start
            assert elapsed < 4.0
            assert values == [
                index.node_cardinality_at(n, 2.0) for n in (0, 1)
            ]


class TestTransportByteIdentity:
    # The acceptance contract: every endpoint's payload bytes identical
    # between transports, and binary == JSON after decoding.
    TARGETS = [
        ("GET", "/healthz", None),
        ("GET", "/cardinality?d=2.0", None),
        ("GET", "/cardinality?node=5&d=2.0", None),
        ("GET", "/cardinality?node=5", None),
        ("POST", "/cardinality", {"nodes": [0, 3, 79], "d": 1.5}),
        ("GET", "/closeness?kind=harmonic", None),
        ("GET", "/closeness?node=7", None),
        ("POST", "/closeness", {"nodes": [1, 2], "kind": "classic"}),
        ("GET", "/neighborhood?node=9", None),
        ("GET", "/neighborhood", None),
        ("GET", "/top-central?count=5", None),
        ("GET", "/node/11", None),
        ("GET", "/cardinality?node=99999", None),       # 404
        ("GET", "/cardinality?d=bogus", None),          # 400
        ("GET", "/no-such-endpoint", None),             # 404
        ("POST", "/update", {"edges": [[0, 1]]}),       # 409 read-only
    ]

    @staticmethod
    def fetch(server, method, target, payload, accept=None):
        request_line = f"{method} {target} HTTP/1.1\r\n"
        headers = "Host: x\r\nConnection: close\r\n"
        if accept:
            headers += f"Accept: {accept}\r\n"
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode()
            headers += (
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
            )
        raw = (request_line + headers + "\r\n").encode() + body
        with socket.create_connection(
            (server.host, server.port), timeout=10
        ) as conn:
            conn.sendall(raw)
            conn.settimeout(10)
            data = b""
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                data += chunk
        ((status, response_body),) = split_responses(data)
        return status, response_body

    def test_payload_bytes_identical_across_transports(self, index):
        # cache_size=0 so "cached" flags cannot drift between servers.
        with AdsServer(index, port=0, cache_size=0) as threaded:
            with AsyncAdsServer(index, port=0, cache_size=0) as aio:
                for method, target, payload in self.TARGETS:
                    t_status, t_body = self.fetch(
                        threaded, method, target, payload
                    )
                    a_status, a_body = self.fetch(
                        aio, method, target, payload
                    )
                    assert (t_status, t_body) == (a_status, a_body), (
                        f"{method} {target} diverged between transports"
                    )

    def test_binary_payloads_decode_to_json_payloads(self, index):
        with AsyncAdsServer(index, port=0, cache_size=0) as server:
            for method, target, payload in self.TARGETS:
                j_status, j_body = self.fetch(
                    server, method, target, payload
                )
                b_status, b_body = self.fetch(
                    server, method, target, payload,
                    accept=wire.WIRE_CONTENT_TYPE,
                )
                assert j_status == b_status
                assert json.loads(j_body) == wire.decode(b_body), (
                    f"{method} {target} diverged between codecs"
                )


class TestAsyncLifecycle:
    def test_start_then_immediate_shutdown(self, index):
        start = time.perf_counter()
        with AsyncAdsServer(index, port=0):
            pass
        assert time.perf_counter() - start < 4.0

    def test_shutdown_before_start_returns_promptly(self, index):
        server = AsyncAdsServer(index, port=0)
        server.shutdown()

    def test_close_is_idempotent(self, index):
        server = AsyncAdsServer(index, port=0)
        server.close()
        server.close()

    def test_port_reusable_after_shutdown(self, index):
        first = AsyncAdsServer(index, port=0)
        port = first.port
        first.shutdown()
        second = AsyncAdsServer(index, port=port)
        second.shutdown()

    def test_clean_shutdown_with_live_keepalive_connection(self, index):
        # A client holding a keep-alive socket open must not hang or
        # crash shutdown (its handler task is cancelled cleanly).
        server = AsyncAdsServer(index, port=0)
        server.start()
        client = QueryClient(server.url)
        assert client.healthz()["status"] == "ok"
        start = time.perf_counter()
        server.shutdown()
        assert time.perf_counter() - start < 5.0
        client.close()


class TestAsyncUpdates:
    def test_update_and_compact_through_async_transport(self, tmp_path):
        # Writes take the same writer lock on the async path; a full
        # update -> query -> compact -> reload cycle must agree with a
        # from-scratch rebuild.
        graph = path_graph(8).to_csr()
        built = AdsIndex.build(graph, k=4)
        index_path = tmp_path / "g.adsidx"
        built.save(index_path)
        with AsyncAdsServer(
            built, port=0, graph=graph, index_path=index_path
        ) as server:
            with QueryClient(server.url) as client:
                result = client.update([[0, 7]])
                assert result["applied_arcs"] == 2  # undirected edge
                updated = client.cardinality(node=0, d=1.0)["value"]
                client.compact()
        rebuilt_graph = path_graph(8)
        rebuilt_graph.add_edge(0, 7)
        rebuilt = AdsIndex.build(rebuilt_graph.to_csr(), k=4)
        assert updated == rebuilt.node_cardinality_at(0, 1.0)
        reloaded = AdsIndex.load(index_path)
        assert reloaded.node_cardinality_at(0, 1.0) == updated
