"""Serve-layer write paths: /update and /compact semantics.

The serving contract for a writable daemon: updates apply atomically
behind the writer lock (queries racing an update always see a
consistent index, before or after, never mid-splice), every applied
batch invalidates the whole-graph result cache, and read-only
deployments -- mmap-backed indexes, servers without a graph -- refuse
writes with a clear 409.
"""

import threading

import pytest

from repro.ads import AdsIndex
from repro.errors import ReproError
from repro.graph.csr import CSRGraph
from repro.serve import AdsServer, AsyncAdsServer, QueryClient, \
    ReadWriteLock, ServeClientError


def _chain_graph(n):
    return CSRGraph.from_edges(
        [(i, i + 1) for i in range(n - 1)], nodes=range(n)
    )


@pytest.fixture(params=["threaded", "async", "cluster"])
def writable_server(tmp_path, request):
    # Write semantics must hold on every deployment flavor: the async
    # path takes the same writer lock through the shared
    # handle_request, and the cluster router's two-phase fan-out must
    # be observationally identical to a single writable server.
    graph = _chain_graph(24)
    index = AdsIndex.build(graph, 4)
    path = tmp_path / "ix.adsidx"
    index.save(path)
    if request.param == "cluster":
        from cluster_harness import start_cluster

        with start_cluster(
            index, workers=2, graph=graph, tmp_path=tmp_path,
            cache_size=64,
        ) as cluster:
            yield cluster
        return
    if request.param == "async":
        server = AsyncAdsServer(
            index, graph=graph, index_path=path, cache_size=64
        )
    else:
        server = AdsServer(
            index, graph=graph, index_path=path, cache_size=64, threads=4
        )
    with server:
        yield server


class TestUpdateEndpoint:
    def test_update_applies_and_reports(self, writable_server):
        with QueryClient(writable_server.url) as client:
            before = client.cardinality(node=0, d=1.0)["value"]
            result = client.update([[0, 23], [5, 50, 2.0]])
            assert result["applied_arcs"] == 4
            assert result["new_nodes"] == 1
            assert result["nodes"] == 25
            assert client.cardinality(node=0, d=1.0)["value"] == before + 1
            assert client.node(50)["sketch_size"] >= 1

    def test_update_invalidates_whole_graph_cache(self, writable_server):
        with QueryClient(writable_server.url) as client:
            client.neighborhood()
            assert client.neighborhood()["cached"] is True
            stale = client.neighborhood()["series"]
            client.update([[0, 23]])
            fresh = client.neighborhood()
            assert fresh["cached"] is False
            assert fresh["series"] != stale
            stats = client.stats()
            assert stats["updates"]["applied_batches"] == 1
            assert stats["updates"]["writable"] is True

    def test_update_under_concurrent_readers(self, writable_server):
        """Readers hammering the index while batches apply never see an
        inconsistent index (a torn splice would 500 or crash)."""
        stop = threading.Event()
        failures = []

        def read_loop():
            with QueryClient(writable_server.url) as client:
                while not stop.is_set():
                    try:
                        payload = client.cardinality(d=2.0)
                        assert payload["results"]
                        client.closeness(kind="harmonic")
                    except Exception as error:  # noqa: BLE001
                        failures.append(error)
                        return

        # 3 keep-alive reader connections + 1 writer fit the fixture's
        # 4 worker threads (a keep-alive connection pins its worker).
        readers = [threading.Thread(target=read_loop) for _ in range(3)]
        for reader in readers:
            reader.start()
        try:
            with QueryClient(writable_server.url) as writer:
                for i in range(10):
                    writer.update([[i, i + 30]])
        finally:
            stop.set()
            for reader in readers:
                reader.join(timeout=10)
        assert not failures
        index = writable_server.index
        assert index.num_nodes == 24 + 10
        # The served index still equals a from-scratch rebuild.
        graph = writable_server.graph
        fresh = CSRGraph.from_edges(
            list(graph.edges()), directed=graph.directed,
            nodes=graph.nodes(),
        )
        rebuilt = AdsIndex.build(fresh, 4)
        assert index.cardinality_at() == rebuilt.cardinality_at()

    def test_malformed_update_bodies(self, writable_server):
        with QueryClient(writable_server.url) as client:
            for edges, message in [
                ([], "must not be empty"),
                ([[1, 1]], "self-loop"),
                ([[1]], "each edge"),
                ([[1, 2, -3.0]], "positive"),
                ([[1, 2, "x"]], "number"),
                ([[None, 2]], "invalid node"),
            ]:
                with pytest.raises(ServeClientError) as excinfo:
                    client.update(edges)
                assert excinfo.value.status == 400
                assert message in str(excinfo.value)


class TestCompactEndpoint:
    def test_compact_flushes_to_index_path(self, writable_server):
        with QueryClient(writable_server.url) as client:
            client.update([[0, 23]])
            info = client.compact()
            assert info["flushed_batches"] == 1
        reloaded = AdsIndex.load(writable_server.index_path)
        assert reloaded.num_nodes == writable_server.index.num_nodes
        assert (
            reloaded.cardinality_at()
            == writable_server.index.cardinality_at()
        )

    def test_client_supplied_path_is_rejected(self, writable_server,
                                              tmp_path):
        """A client-chosen destination would be an arbitrary-file-write
        primitive; the server pins compaction to its own index path."""
        target = tmp_path / "evil.txt"
        with QueryClient(writable_server.url) as client:
            with pytest.raises(ServeClientError) as excinfo:
                client._request(
                    "POST", "/compact", payload={"path": str(target)}
                )
            assert excinfo.value.status == 400
            assert "index path" in str(excinfo.value)
        assert not target.exists()

    def test_compact_keeps_graph_file_in_lockstep(self, tmp_path):
        """After update + compact + restart from disk, the reloaded
        graph/index pair must keep matching a rebuild -- a stale edge
        list would silently diverge on the next update."""
        from repro.graph.io import read_edge_list, write_edge_list

        graph = _chain_graph(10)
        index = AdsIndex.build(graph, 4)
        index_path = tmp_path / "ix.adsidx"
        graph_path = tmp_path / "g.txt"
        index.save(index_path)
        write_edge_list(graph, graph_path, all_nodes=True)
        with AdsServer(
            index, graph=graph, index_path=index_path,
            graph_path=graph_path,
        ) as server:
            with QueryClient(server.url) as client:
                client.update([[0, 9]])
                info = client.compact()
                assert info["graph_path"] == str(graph_path)
        # restart: reload both from disk, apply another batch
        graph2 = read_edge_list(graph_path, node_type=int).to_csr()
        index2 = AdsIndex.load(index_path)
        assert graph2.nodes() == index2.nodes()
        assert graph2.has_edge(0, 9)  # the applied batch survived
        index2.apply_edges(graph2, [(3, 8)])
        fresh = CSRGraph.from_edges(
            list(graph2.edges()), nodes=graph2.nodes()
        )
        assert index2.cardinality_at() == \
            AdsIndex.build(fresh, 4).cardinality_at()

    def test_compact_without_index_path_answers_409(self):
        graph = _chain_graph(6)
        index = AdsIndex.build(graph, 2)
        with AdsServer(index, graph=graph) as server:
            with QueryClient(server.url) as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.compact()
                assert excinfo.value.status == 409


class TestReadOnlyRejection:
    def test_mmap_backed_server_answers_409(self, tmp_path):
        graph = _chain_graph(6)
        index = AdsIndex.build(graph, 2)
        path = tmp_path / "ix.adsidx"
        index.save(path)
        mapped = AdsIndex.load(path, mmap=True)
        with AdsServer(mapped, graph=graph, index_path=path) as server:
            with QueryClient(server.url) as client:
                assert client.stats()["updates"]["writable"] is False
                for call in (
                    lambda: client.update([[0, 5]]),
                    client.compact,
                ):
                    with pytest.raises(ServeClientError) as excinfo:
                        call()
                    assert excinfo.value.status == 409
                    assert "read-only" in str(excinfo.value)

    def test_graphless_server_answers_409(self, tmp_path):
        graph = _chain_graph(6)
        index = AdsIndex.build(graph, 2)
        with AdsServer(index) as server:
            with QueryClient(server.url) as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.update([[0, 5]])
                assert excinfo.value.status == 409
                assert "--graph" in str(excinfo.value)

    def test_mismatched_graph_is_rejected_at_construction(self):
        index = AdsIndex.build(_chain_graph(6), 2)
        with pytest.raises(ReproError, match="mismatch"):
            AdsServer(index, graph=_chain_graph(7))


class TestReadWriteLock:
    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        log = []
        entered = threading.Event()
        release = threading.Event()

        def writer():
            with lock.write_locked():
                entered.set()
                release.wait(timeout=5)
                log.append("write-done")

        def reader():
            entered.wait(timeout=5)
            with lock.read_locked():
                log.append("read")

        writer_thread = threading.Thread(target=writer)
        reader_thread = threading.Thread(target=reader)
        writer_thread.start()
        reader_thread.start()
        entered.wait(timeout=5)
        assert log == []  # reader blocked behind the active writer
        release.set()
        writer_thread.join(timeout=5)
        reader_thread.join(timeout=5)
        assert log == ["write-done", "read"]

    def test_concurrent_readers_proceed(self):
        lock = ReadWriteLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read_locked():
                inside.wait()  # all three must be inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5)
        assert not any(thread.is_alive() for thread in threads)


class TestLabelCoercion:
    def test_json_int_labels_coerce_to_str_labeled_index(self, tmp_path):
        """JSON carries numbers; a str-labeled index (edge list parsed
        without --int-nodes) must not grow phantom int nodes."""
        graph = CSRGraph.from_edges(
            [("0", "1"), ("1", "2"), ("2", "3")], nodes=["0", "1", "2", "3"]
        )
        index = AdsIndex.build(graph, 4)
        with AdsServer(index, graph=graph) as server:
            with QueryClient(server.url) as client:
                result = client.update([[0, 2]])
                assert result["new_nodes"] == 0
                assert result["applied_arcs"] == 2
                assert client.cardinality(node="0", d=1.0)["value"] == 3.0
        assert index.nodes() == ["0", "1", "2", "3"]

    def test_coerced_self_loop_is_a_400(self):
        graph = CSRGraph.from_edges([("0", "1")], nodes=["0", "1"])
        index = AdsIndex.build(graph, 2)
        with AdsServer(index, graph=graph) as server:
            with QueryClient(server.url) as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.update([["0", 0]])
                assert excinfo.value.status == 400
                assert "self-loop" in str(excinfo.value)

    def test_unconvertible_label_on_int_index_is_a_400(self):
        """Accepting 'alice' onto an int-labeled index would poison it
        with a mixed label set no edge-list file can represent."""
        graph = CSRGraph.from_edges([(0, 1)], nodes=[0, 1])
        index = AdsIndex.build(graph, 2)
        with AdsServer(index, graph=graph) as server:
            with QueryClient(server.url) as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.update([[1, "alice"]])
                assert excinfo.value.status == 400
                assert "mixed label set" in str(excinfo.value)
        assert "alice" not in index and index.num_nodes == 2


class TestAtomicBatchValidation:
    def test_invalid_edge_mid_batch_leaves_graph_untouched(self):
        """A malformed tuple must not leave earlier batch edges half
        applied: the retry would no-op them as duplicates and the index
        would silently diverge from a rebuild."""
        graph = CSRGraph.from_edges([(0, 1), (1, 2), (2, 3)], nodes=range(4))
        index = AdsIndex.build(graph, 4)
        from repro.errors import GraphError
        with pytest.raises(GraphError):
            index.apply_edges(graph, [(0, 3), (2, 2)])
        assert not graph.has_edge(0, 3)
        result = index.apply_edges(graph, [(0, 3)])
        assert result.applied_arcs == 2
        assert index.cardinality_at(1.0)[0] == 3.0
