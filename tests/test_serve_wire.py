"""The binary wire codec: round-trips, strictness, negotiation.

The codec's contract is exact equivalence with the JSON value space:
anything a server payload can say in JSON must round-trip through
``repro.serve.wire`` unchanged -- same types, same float bits -- and
malformed buffers must be refused loudly, never half-decoded.  The
end-to-end half drives a real server in both codecs and requires
identical decoded payloads.
"""

import json
import math
import struct

import pytest

from repro.ads import AdsIndex
from repro.graph import barabasi_albert_graph
from repro.rand.hashing import HashFamily
from repro.serve import AdsServer, QueryClient, ServeClientError
from repro.serve import wire

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


class TestRoundTrip:
    @pytest.mark.parametrize("value", [
        None,
        True,
        False,
        0,
        -1,
        2 ** 62,
        -(2 ** 63),           # INT64_MIN boundary
        2 ** 63 - 1,          # INT64_MAX boundary
        2 ** 63,              # first bigint
        -(2 ** 63) - 1,       # first negative bigint
        10 ** 40,
        -(10 ** 40),
        0.0,
        -0.0,
        2.5,
        math.inf,
        -math.inf,
        "",
        "hello",
        "näïve ünicode ✓",
        [],
        [1, 2.0, "three", None, True],
        {},
        {"node": 5, "d": 2.0, "value": 17.25},
        {"nested": {"results": [[1, 0.5], [2, 0.25]], "cached": False}},
        {1: "int key", 2.5: "float key", "s": "str key"},
    ])
    def test_value_round_trips_exactly(self, value):
        assert wire.decode(wire.encode(value)) == value

    def test_type_identity_is_preserved(self):
        # JSON cannot tell 1 from 1.0 after a round trip through some
        # decoders; the wire codec must.
        decoded = wire.decode(wire.encode([1, 1.0, True, False, None]))
        assert [type(item) for item in decoded] == [
            int, float, bool, bool, type(None)
        ]

    def test_float_bits_are_exact(self):
        for value in (0.1, 1 / 3, 1e-300, 1.7976931348623157e308):
            (roundtripped,) = struct.unpack(
                ">d", struct.pack(">d", value)
            )
            assert wire.decode(wire.encode(value)) == roundtripped

    def test_nan_round_trips(self):
        decoded = wire.decode(wire.encode(float("nan")))
        assert math.isnan(decoded)

    def test_negative_zero_sign_survives(self):
        assert math.copysign(1.0, wire.decode(wire.encode(-0.0))) == -1.0

    def test_tuple_encodes_as_list(self):
        assert wire.decode(wire.encode((1, 2))) == [1, 2]

    def test_compactness_on_float_heavy_payloads(self):
        # Where the codec pays off in bytes: full-precision doubles
        # cost 9 bytes each vs ~18-19 JSON characters, which is what
        # whole-graph sweeps and batch results are made of.
        payload = {
            "d": 2.0,
            "results": [[i, i * 0.1234567890123] for i in range(200)],
        }
        assert len(wire.encode(payload)) < len(json.dumps(payload))


class TestStrictDecoding:
    def test_truncated_buffers_raise(self):
        data = wire.encode({"a": [1, 2.5, "three"]})
        for cut in range(len(data)):
            with pytest.raises(wire.WireFormatError):
                wire.decode(data[:cut])

    def test_trailing_bytes_raise(self):
        with pytest.raises(wire.WireFormatError) as excinfo:
            wire.decode(wire.encode(1) + b"\x00")
        assert "trailing" in str(excinfo.value)

    def test_unknown_tag_raises(self):
        with pytest.raises(wire.WireFormatError):
            wire.decode(b"\xff")

    def test_invalid_utf8_raises(self):
        with pytest.raises(wire.WireFormatError):
            wire.decode(bytes([0x06]) + struct.pack(">I", 2) + b"\xff\xfe")

    def test_lying_list_count_is_refused_before_allocation(self):
        # A 4-billion-item list header on a 10-byte buffer must be
        # rejected up front, not by looping until exhaustion.
        with pytest.raises(wire.WireFormatError):
            wire.decode(bytes([0x07]) + struct.pack(">I", 2 ** 32 - 1))

    def test_container_keys_must_be_scalars(self):
        data = bytes([0x08]) + struct.pack(">I", 1)
        data += wire.encode([1])  # a list key
        data += wire.encode(2)
        with pytest.raises(wire.WireFormatError):
            wire.decode(data)

    def test_excessive_nesting_refused_both_ways(self):
        deep = 0
        for _ in range(100):
            deep = [deep]
        with pytest.raises(wire.WireFormatError):
            wire.encode(deep)
        raw = bytes([0x07]) + struct.pack(">I", 1)
        with pytest.raises(wire.WireFormatError):
            wire.decode(raw * 100 + wire.encode(0))

    def test_unencodable_type_raises(self):
        with pytest.raises(wire.WireFormatError):
            wire.encode(object())
        with pytest.raises(wire.WireFormatError):
            wire.encode({1, 2})

    def test_non_bytes_input_raises(self):
        with pytest.raises(wire.WireFormatError):
            wire.decode("not bytes")


if HAVE_HYPOTHESIS:
    json_values = st.recursive(
        st.none()
        | st.booleans()
        | st.integers()
        | st.floats(allow_nan=False)
        | st.text(),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(), children, max_size=4),
        max_leaves=20,
    )

    class TestPropertyRoundTrip:
        @settings(max_examples=200, deadline=None)
        @given(json_values)
        def test_arbitrary_json_value_round_trips(self, value):
            assert wire.decode(wire.encode(value)) == value


class TestNegotiation:
    def test_accepts_binary(self):
        assert wire.accepts_binary("application/x-repro-wire")
        assert wire.accepts_binary(
            "application/json, application/x-repro-wire"
        )
        assert wire.accepts_binary("APPLICATION/X-REPRO-WIRE")
        assert not wire.accepts_binary("application/json")
        assert not wire.accepts_binary("*/*")
        assert not wire.accepts_binary(None)
        assert not wire.accepts_binary("")

    def test_is_binary_content_type(self):
        assert wire.is_binary_content_type("application/x-repro-wire")
        assert wire.is_binary_content_type(
            "application/x-repro-wire; charset=binary"
        )
        assert not wire.is_binary_content_type("application/json")
        assert not wire.is_binary_content_type(None)

    def test_encode_response_auto_negotiates(self):
        payload = {"value": 2.0}
        data, content_type = wire.encode_response(
            payload, "application/x-repro-wire", "auto"
        )
        assert content_type == wire.WIRE_CONTENT_TYPE
        assert wire.decode(data) == payload
        data, content_type = wire.encode_response(payload, None, "auto")
        assert content_type == wire.JSON_CONTENT_TYPE
        assert json.loads(data) == payload

    def test_wire_mode_json_pins_json(self):
        data, content_type = wire.encode_response(
            {"a": 1}, "application/x-repro-wire", "json"
        )
        assert content_type == wire.JSON_CONTENT_TYPE
        assert json.loads(data) == {"a": 1}


@pytest.fixture(scope="module")
def index():
    graph = barabasi_albert_graph(60, 3, seed=7).to_csr()
    return AdsIndex.build(graph, 8, family=HashFamily(4))


class TestEndToEnd:
    def test_binary_client_payloads_equal_json(self, index):
        with AdsServer(index, port=0, cache_size=0) as server:
            with QueryClient(server.url) as js, QueryClient(
                server.url, wire_mode="binary"
            ) as bs:
                calls = [
                    lambda c: c.healthz(),
                    lambda c: c.cardinality(node=3, d=2.0),
                    lambda c: c.cardinality(d=2.0),
                    lambda c: c.cardinality_batch([0, 1, 59], d=1.5),
                    lambda c: c.closeness(node=3, kind="harmonic"),
                    lambda c: c.closeness_batch([2, 4]),
                    lambda c: c.neighborhood(node=5),
                    lambda c: c.top_central(count=4),
                    lambda c: c.node(7),
                ]
                for call in calls:
                    assert call(js) == call(bs)

    def test_binary_post_body_is_accepted(self, index):
        # Request-direction negotiation: Content-Type selects the
        # decoder, independent of the response codec.
        with AdsServer(index, port=0) as server:
            with QueryClient(server.url, wire_mode="binary") as client:
                response = client.cardinality_batch([0, 2], d=2.0)
                assert response["results"] == [
                    [0, index.node_cardinality_at(0, 2.0)],
                    [2, index.node_cardinality_at(2, 2.0)],
                ]

    def test_malformed_binary_body_is_400(self, index):
        with AdsServer(index, port=0) as server:
            with QueryClient(server.url, wire_mode="binary") as client:
                import http.client

                conn = http.client.HTTPConnection(
                    server.host, server.port, timeout=10
                )
                conn.request(
                    "POST", "/cardinality", body=b"\xff\xff",
                    headers={"Content-Type": wire.WIRE_CONTENT_TYPE},
                )
                response = conn.getresponse()
                body = json.loads(response.read())
                conn.close()
                assert response.status == 400
                assert "malformed binary body" in body["error"]

    def test_wire_mode_json_server_ignores_accept(self, index):
        # --wire json pins responses to JSON even for binary clients;
        # the client transparently parses either, so results agree.
        with AdsServer(index, port=0, wire_mode="json") as server:
            with QueryClient(server.url, wire_mode="binary") as client:
                assert client.healthz()["status"] == "ok"
                import urllib.request

                request = urllib.request.Request(
                    server.url + "/healthz",
                    headers={"Accept": wire.WIRE_CONTENT_TYPE},
                )
                with urllib.request.urlopen(request) as response:
                    assert response.headers["Content-Type"] == (
                        wire.JSON_CONTENT_TYPE
                    )

    def test_error_payloads_speak_binary_too(self, index):
        with AdsServer(index, port=0) as server:
            with QueryClient(server.url, wire_mode="binary") as client:
                with pytest.raises(ServeClientError) as excinfo:
                    client.cardinality(node=99999)
                assert excinfo.value.status == 404

    def test_json_clients_see_unchanged_api(self, index):
        # The compat guarantee: a client that never mentions the wire
        # type gets exactly the JSON bytes of previous releases.
        with AdsServer(index, port=0) as server:
            import urllib.request

            with urllib.request.urlopen(
                server.url + "/cardinality?node=1&d=2.0"
            ) as response:
                assert response.headers["Content-Type"] == (
                    "application/json"
                )
                payload = json.loads(response.read())
                assert payload["value"] == (
                    index.node_cardinality_at(1, 2.0)
                )
