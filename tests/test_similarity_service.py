"""The similarity / distance-oracle service tier.

Three layers are held to account here:

* **Kernels vs reference** -- hypothesis drives the batch kernel
  results (``pairs_neighborhood_jaccard``, ``pairs_union_size_estimate``,
  ``pairs_closeness_similarity``, ``pairs_distance_estimate``) against
  the per-object reference estimators in
  :mod:`repro.centrality.similarity` and the sketch definitions in
  :mod:`repro.ads.base`, on every installed backend.  Equality is
  exact (``==`` on floats), not approximate: both sides must execute
  the same float-op sequence.
* **Service parity** -- every new endpoint answers identically (same
  payloads) through the threaded server, the asyncio transport, and
  the sharded cluster router, and the raw response *bytes* match
  across all three on both wire codecs, refusals included.
* **Flavor gating** -- similarity needs bottom-k sketches; the other
  flavors refuse with a clean 409 on every transport, and the legacy
  ``most_similar_nodes`` wrapper agrees with the batch layer.
"""

import http.client
import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from cluster_harness import start_cluster
from repro.ads import AdsIndex
from repro.ads.kernels import numpy_available
from repro.centrality.similarity import (
    closeness_similarity,
    most_similar_nodes,
    neighborhood_jaccard,
)
from repro.errors import EstimatorError
from repro.estimators.basic import bottom_k_cardinality
from repro.graph import barabasi_albert_graph
from repro.rand.hashing import HashFamily
from repro.serve import AdsServer, AsyncAdsServer, QueryClient

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

N, K = 90, 8


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert_graph(N, 3, seed=11).to_csr()


@pytest.fixture(scope="module", params=BACKENDS)
def index(graph, request):
    return AdsIndex.build(
        graph, K, family=HashFamily(4), backend=request.param
    )


@pytest.fixture(scope="module")
def ads_set(index):
    return index.to_ads_set()


# ----------------------------------------------------------------------
# Kernel vs reference estimators (per-backend, exact equality)
# ----------------------------------------------------------------------
class TestKernelsMatchReference:
    @settings(max_examples=60, deadline=None)
    @given(
        u=st.integers(0, N - 1),
        v=st.integers(0, N - 1),
        d=st.one_of(
            st.just(math.inf), st.floats(0.0, 6.0, allow_nan=False)
        ),
    )
    def test_jaccard_matches_reference(self, index, ads_set, u, v, d):
        (value,) = index.pairs_neighborhood_jaccard([(u, v)], d)
        assert value == neighborhood_jaccard(ads_set[u], ads_set[v], d)

    @settings(max_examples=60, deadline=None)
    @given(
        u=st.integers(0, N - 1),
        v=st.integers(0, N - 1),
        d=st.one_of(
            st.just(math.inf), st.floats(0.0, 6.0, allow_nan=False)
        ),
    )
    def test_union_size_matches_sketch_definition(
        self, index, ads_set, u, v, d
    ):
        # The union bottom-k built from the two reference MinHash
        # sketches, fed through the basic bottom-k estimator -- the
        # paper's union-cardinality recipe, object by object.
        (value,) = index.pairs_union_size_estimate([(u, v)], d)
        merged = {}
        for rank, node in ads_set[u].minhash_at(d) + ads_set[v].minhash_at(d):
            merged[node] = rank
        union = sorted(
            (rank, node) for node, rank in merged.items()
        )[:K]
        tau = union[-1][0] if len(union) == K else index.rank_sup
        assert value == bottom_k_cardinality(
            len(union), tau, K, sup=index.rank_sup
        )

    @settings(max_examples=30, deadline=None)
    @given(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def test_closeness_similarity_matches_reference(
        self, index, ads_set, u, v
    ):
        (value,) = index.pairs_closeness_similarity([(u, v)])
        assert value == closeness_similarity(ads_set[u], ads_set[v])

    @settings(max_examples=30, deadline=None)
    @given(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def test_distance_is_min_over_common_entries(
        self, index, ads_set, u, v
    ):
        (value,) = index.pairs_distance_estimate([(u, v)])
        du = {e.node: e.distance for e in ads_set[u].entries}
        best = math.inf
        for e in ads_set[v].entries:
            if e.node in du:
                best = min(best, du[e.node] + e.distance)
        assert value == best
        # A 2-hop-cover bound: the pair's own entries make it exact
        # for d(u, u), and every estimate dominates 0.
        assert value >= 0.0
        (self_distance,) = index.pairs_distance_estimate([(u, u)])
        assert self_distance == 0.0

    @settings(max_examples=20, deadline=None)
    @given(
        query=st.integers(0, N - 1),
        count=st.integers(1, 12),
        d=st.one_of(
            st.just(math.inf), st.floats(1.0, 4.0, allow_nan=False)
        ),
    )
    def test_legacy_wrapper_agrees_with_batch_layer(
        self, index, ads_set, query, count, d
    ):
        # most_similar_nodes over the index delegates to the batch
        # kernels; over a plain ADS dict it runs the legacy object
        # scan.  Same ranking, same floats, same tie-break.
        assert most_similar_nodes(index, query, d, count=count) == \
            most_similar_nodes(ads_set, query, d, count=count)

    def test_non_bottomk_index_refuses(self, graph):
        kmins = AdsIndex.build(graph, K, flavor="kmins")
        with pytest.raises(EstimatorError, match="bottom-k"):
            kmins.pairs_neighborhood_jaccard([(0, 1)], 1.0)
        with pytest.raises(EstimatorError, match="bottom-k"):
            kmins.most_similar(0)


# ----------------------------------------------------------------------
# Service parity across the three transports
# ----------------------------------------------------------------------
@pytest.fixture(
    scope="module", params=["threaded", "async", "cluster"]
)
def server(index, request):
    if request.param == "cluster":
        with start_cluster(index, workers=2, cache_size=16) as cluster:
            yield cluster
        return
    if request.param == "async":
        factory = AsyncAdsServer(index, port=0, cache_size=16)
    else:
        factory = AdsServer(index, port=0, cache_size=16, threads=4)
    with factory as running:
        yield running


@pytest.fixture()
def client(server):
    with QueryClient(server.url) as running:
        yield running


PAIRS = [[0, 5], [3, 3], [10, 89], [89, 2]]


class TestEndpoints:
    def test_similarity_jaccard_matches_index(self, client, index):
        response = client.similarity_batch(PAIRS, d=2.0)
        assert response["metric"] == "jaccard"
        assert response["d"] == 2.0
        expected = index.pairs_neighborhood_jaccard(
            [tuple(p) for p in PAIRS], 2.0
        )
        assert response["results"] == [
            [u, v, value] for (u, v), value in zip(PAIRS, expected)
        ]

    def test_similarity_default_d_is_infinite(self, client, index):
        response = client.similarity_batch(PAIRS)
        assert response["d"] is None  # JSON null encodes inf
        expected = index.pairs_neighborhood_jaccard(
            [tuple(p) for p in PAIRS], math.inf
        )
        assert [row[2] for row in response["results"]] == expected

    def test_similarity_closeness_metric(self, client, index):
        response = client.similarity_batch(PAIRS, metric="closeness")
        assert response["metric"] == "closeness"
        assert "d" not in response
        expected = index.pairs_closeness_similarity(
            [tuple(p) for p in PAIRS]
        )
        assert [row[2] for row in response["results"]] == expected

    def test_distance_matches_index(self, client, index):
        response = client.distance_batch(PAIRS)
        expected = index.pairs_distance_estimate(
            [tuple(p) for p in PAIRS]
        )
        assert response["results"] == [
            [u, v, value if math.isfinite(value) else None]
            for (u, v), value in zip(PAIRS, expected)
        ]

    def test_similar_matches_index(self, client, index):
        response = client.similar(5, count=7, d=2.0)
        assert response["node"] == 5
        assert response["results"] == [
            [node, value]
            for node, value in index.most_similar(5, count=7, d=2.0)
        ]

    def test_nf_curve_matches_index_series(self, client, index):
        response = client.nf_curve()
        series = index.neighborhood_function()
        total = series[-1][1]
        assert response["total_pairs"] == total
        assert response["points"] == [
            [d, running, running / total] for d, running in series
        ]

    def test_unknown_pair_node_is_404(self, client):
        with pytest.raises(Exception) as info:
            client.distance_batch([[0, 4242]])
        assert info.value.status == 404

    def test_malformed_pairs_are_400(self, client):
        for payload in ([], [[0]], [[0, 1, 2]], "nope"):
            with pytest.raises(Exception) as info:
                client.similarity_batch(payload)
            assert info.value.status == 400

    def test_bogus_metric_is_400(self, client):
        with pytest.raises(Exception) as info:
            client.similarity_batch(PAIRS, metric="cosine")
        assert info.value.status == 400

    def test_d_with_closeness_is_400(self, client):
        with pytest.raises(Exception) as info:
            client.similarity_batch(PAIRS, metric="closeness", d=1.0)
        assert info.value.status == 400


# ----------------------------------------------------------------------
# Raw bytes: the three transports answer identically, both codecs
# ----------------------------------------------------------------------
def _raw(server, method, path, body=None, accept="application/json"):
    conn = http.client.HTTPConnection(
        server.host, server.port, timeout=10
    )
    headers = {"Accept": accept}
    data = None
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        headers["Content-Type"] = "application/json"
    conn.request(method, path, body=data, headers=headers)
    response = conn.getresponse()
    payload = (response.status, response.read())
    conn.close()
    return payload


REQUESTS = (
    ("POST", "/similarity", {"pairs": PAIRS}),
    ("POST", "/similarity", {"pairs": PAIRS, "d": 2.0}),
    ("POST", "/similarity", {"pairs": PAIRS, "metric": "closeness"}),
    ("POST", "/distance", {"pairs": PAIRS}),
    ("GET", "/similar/5?count=7&d=2.0", None),
    ("GET", "/nf-curve", None),
    # Refusal parity: unregistered path, malformed pairs, bad metric,
    # d on the wrong metric -- same status, same bytes, everywhere.
    ("GET", "/similarities", None),
    ("POST", "/similarity", {"pairs": []}),
    ("POST", "/similarity", {"pairs": PAIRS, "metric": "cosine"}),
    ("POST", "/similarity",
     {"pairs": PAIRS, "metric": "closeness", "d": 1.0}),
    ("POST", "/distance", {"pairs": [[0, 4242]]}),
)


class TestByteIdentity:
    def test_all_transports_answer_identical_bytes(self, index):
        with AdsServer(index, cache_size=4) as single, \
                AsyncAdsServer(index, cache_size=4) as async_server, \
                start_cluster(index, workers=3, cache_size=4) as cluster:
            for method, path, body in REQUESTS:
                for accept in (
                    "application/json", "application/x-repro-wire"
                ):
                    reference = _raw(single, method, path, body, accept)
                    assert _raw(
                        async_server, method, path, body, accept
                    ) == reference, (method, path, accept)
                    assert _raw(
                        cluster, method, path, body, accept
                    ) == reference, (method, path, accept)


class TestFlavorGating:
    @pytest.fixture(
        scope="class", params=["kmins", "kpartition"]
    )
    def wrong_flavor_servers(self, graph, request):
        index = AdsIndex.build(graph, K, flavor=request.param)
        with AdsServer(index, cache_size=4) as single, \
                start_cluster(index, workers=2, cache_size=4) as cluster:
            yield single, cluster

    def test_similarity_refuses_409_everywhere(
        self, wrong_flavor_servers
    ):
        for server in wrong_flavor_servers:
            for method, path, body in (
                ("POST", "/similarity", {"pairs": PAIRS}),
                ("POST", "/distance", {"pairs": PAIRS}),
                ("GET", "/similar/5", None),
            ):
                status, raw = _raw(server, method, path, body)
                assert status == 409, (path, raw)
                assert b"bottom-k" in raw

    def test_409_bytes_match_across_transports(
        self, wrong_flavor_servers
    ):
        single, cluster = wrong_flavor_servers
        for method, path, body in (
            ("POST", "/similarity", {"pairs": PAIRS}),
            ("GET", "/similar/5", None),
        ):
            assert _raw(single, method, path, body) == \
                _raw(cluster, method, path, body)
