"""Tests for the bottom-k MinHash sketch."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EstimatorError
from repro.rand.hashing import HashFamily
from repro.rand.ranks import BaseBRanks
from repro.sketches import BottomKSketch


class TestBasics:
    def test_holds_k_smallest(self, family):
        sketch = BottomKSketch(5, family)
        sketch.update(range(100))
        expected = sorted((family.rank(i), i) for i in range(100))[:5]
        assert sketch.entries() == expected

    def test_add_reports_changes(self, family):
        sketch = BottomKSketch(3, family)
        items = sorted(range(50), key=family.rank)
        assert sketch.add(items[10])
        assert sketch.add(items[5])
        assert sketch.add(items[0])
        assert not sketch.add(items[40])  # rank too large
        assert not sketch.add(items[0])   # repeat

    def test_undersized_sketch(self, family):
        sketch = BottomKSketch(8, family)
        sketch.update(range(3))
        assert len(sketch) == 3
        assert sketch.kth_rank == 1.0  # supremum
        assert sketch.cardinality() == 3.0  # exact below k

    def test_contains_and_items(self, family):
        sketch = BottomKSketch(4, family)
        sketch.update(range(30))
        for item in sketch.items():
            assert item in sketch

    def test_kth_rank_is_threshold(self, family):
        sketch = BottomKSketch(4, family)
        sketch.update(range(200))
        tau = sketch.kth_rank
        assert tau == sketch.entries()[-1][0]
        # any element with rank below tau that is absent would enter
        absent = [i for i in range(200, 400) if family.rank(i) < tau]
        if absent:
            assert sketch.add(absent[0])

    def test_update_probability_equals_tau(self, family):
        sketch = BottomKSketch(4, family)
        sketch.update(range(100))
        assert sketch.update_probability() == sketch.kth_rank

    def test_copy_independent(self, family):
        sketch = BottomKSketch(3, family)
        sketch.update(range(10))
        clone = sketch.copy()
        clone.update(range(10, 300))
        assert len(sketch.entries()) == 3
        assert clone.entries() != sketch.entries() or True
        assert sketch.kth_rank >= clone.kth_rank


class TestMerge:
    def test_merge_equals_union(self, family):
        a = BottomKSketch(6, family)
        b = BottomKSketch(6, family)
        union = BottomKSketch(6, family)
        a.update(range(0, 60))
        b.update(range(40, 120))
        union.update(range(0, 120))
        a.merge(b)
        assert a.entries() == union.entries()

    def test_merge_requires_same_k(self, family):
        a = BottomKSketch(3, family)
        b = BottomKSketch(4, family)
        with pytest.raises(EstimatorError):
            a.merge(b)

    def test_merge_requires_same_family(self, family):
        a = BottomKSketch(3, family)
        b = BottomKSketch(3, HashFamily(family.seed + 1))
        with pytest.raises(EstimatorError):
            a.merge(b)

    def test_merge_requires_same_flavor(self, family):
        from repro.sketches import KMinsSketch

        a = BottomKSketch(3, family)
        b = KMinsSketch(3, family)
        with pytest.raises(EstimatorError):
            a.merge(b)

    @settings(max_examples=30, deadline=None)
    @given(
        st.sets(st.integers(0, 500), max_size=80),
        st.sets(st.integers(0, 500), max_size=80),
        st.integers(min_value=1, max_value=8),
    )
    def test_merge_union_property(self, set_a, set_b, k):
        family = HashFamily(99)
        a = BottomKSketch(k, family)
        b = BottomKSketch(k, family)
        union = BottomKSketch(k, family)
        a.update(set_a)
        b.update(set_b)
        union.update(set_a | set_b)
        a.merge(b)
        assert a.entries() == union.entries()


class TestBaseBRanks:
    def test_rounded_ranks_are_powers(self, family):
        sketch = BottomKSketch(4, family, ranks=BaseBRanks(family, 2.0))
        sketch.update(range(100))
        for rank, _ in sketch.entries():
            h = round(-math.log2(rank))
            assert rank == 2.0 ** (-h)

    def test_ties_do_not_update(self, family):
        sketch = BottomKSketch(1, family, ranks=BaseBRanks(family, 2.0))
        rounder = BaseBRanks(family, 2.0)
        # Feed elements until one is in; then an element with the same
        # rounded rank must not displace it.
        sketch.add(0)
        current = sketch.entries()[0][0]
        same = next(
            i for i in range(1, 10_000) if rounder.rank(i) == current
        )
        assert not sketch.add(same)


class TestCardinality:
    def test_estimate_accuracy(self):
        import statistics

        n = 3000
        estimates = [
            BottomKSketch(32, HashFamily(seed)) for seed in range(50)
        ]
        for sketch in estimates:
            sketch.update(range(n))
        values = [s.cardinality() for s in estimates]
        assert statistics.mean(values) == pytest.approx(n, rel=0.1)
        cv = statistics.pstdev(values) / n
        assert cv < 2.5 / math.sqrt(30)  # loose CV sanity bound
