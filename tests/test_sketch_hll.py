"""Tests for the HyperLogLog implementation."""

import math
import statistics

import pytest

from repro.rand.hashing import HashFamily
from repro.sketches import HyperLogLog
from repro.sketches.hll import hll_alpha


class TestAlpha:
    def test_published_constants(self):
        assert hll_alpha(16) == 0.673
        assert hll_alpha(32) == 0.697
        assert hll_alpha(64) == 0.709
        assert hll_alpha(1024) == pytest.approx(0.7213 / (1 + 1.079 / 1024))


class TestSketchLayout:
    def test_is_kpartition_base2(self, family):
        hll = HyperLogLog(16, family)
        assert hll.base == 2.0
        assert hll.max_register == 31
        hll.update(range(100))
        for h in range(16):
            if hll.argmin[h] is not None:
                assert hll.minima[h] == 2.0 ** (-hll.registers[h])

    def test_register_bits_control_saturation(self, family):
        hll = HyperLogLog(16, family, register_bits=3)
        assert hll.max_register == 7

    def test_copy(self, family):
        hll = HyperLogLog(16, family)
        hll.update(range(50))
        clone = hll.copy()
        clone.update(range(50, 500))
        assert clone.estimate() > hll.estimate()


class TestEstimates:
    def test_small_range_uses_linear_counting(self, family):
        hll = HyperLogLog(64, family)
        hll.update(range(10))
        zeros = 64 - hll.nonempty_buckets()
        assert hll.estimate() == pytest.approx(64 * math.log(64 / zeros))

    def test_small_cardinality_accuracy(self):
        # linear counting should be very accurate for n << k
        values = []
        for seed in range(40):
            hll = HyperLogLog(256, HashFamily(seed))
            hll.update(range(30))
            values.append(hll.estimate())
        assert statistics.mean(values) == pytest.approx(30, rel=0.05)

    def test_large_cardinality_nrmse(self):
        n, k, runs = 50_000, 64, 60
        errors = []
        for seed in range(runs):
            hll = HyperLogLog(k, HashFamily(seed))
            hll.update(range(n))
            errors.append(hll.estimate() / n - 1.0)
        nrmse = math.sqrt(statistics.mean(e * e for e in errors))
        # paper's reference 1.08/sqrt(k) with generous slack for 60 runs
        assert nrmse < 2.0 * 1.08 / math.sqrt(k)
        assert nrmse > 0.3 * 1.08 / math.sqrt(k)

    def test_repeats_do_not_change_estimate(self, family):
        hll = HyperLogLog(32, family)
        hll.update(range(1000))
        before = hll.estimate()
        hll.update(range(1000))  # all repeats
        assert hll.estimate() == before

    def test_large_range_correction_flag(self, family):
        hll = HyperLogLog(16, family)
        hll.update(range(2000))
        # with full-precision ranks the flag should barely matter here
        assert hll.estimate(large_range_bits=32) == pytest.approx(
            hll.estimate(), rel=0.05
        )

    def test_cardinality_alias(self, family):
        hll = HyperLogLog(16, family)
        hll.update(range(100))
        assert hll.cardinality() == hll.estimate()
