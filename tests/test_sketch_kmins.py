"""Tests for the k-mins MinHash sketch."""

import math
import statistics

import pytest

from repro.rand.hashing import HashFamily
from repro.sketches import KMinsSketch


class TestBasics:
    def test_tracks_minima_per_permutation(self, family):
        sketch = KMinsSketch(4, family)
        sketch.update(range(100))
        for h in range(4):
            expected = min(range(100), key=lambda i: family.rank(i, h))
            assert sketch.argmin[h] == expected
            assert sketch.minima[h] == family.rank(expected, h)

    def test_add_reports_changes(self, family):
        sketch = KMinsSketch(3, family)
        assert sketch.add(0)  # first element always changes something
        assert not sketch.add(0)  # repeat never does

    def test_empty_minima_are_one(self, family):
        sketch = KMinsSketch(3, family)
        assert sketch.minima == [1.0, 1.0, 1.0]

    def test_copy_independent(self, family):
        sketch = KMinsSketch(3, family)
        sketch.update(range(10))
        clone = sketch.copy()
        clone.update(range(10, 500))
        assert all(c <= s for c, s in zip(clone.minima, sketch.minima))

    def test_merge_equals_union(self, family):
        a = KMinsSketch(5, family)
        b = KMinsSketch(5, family)
        union = KMinsSketch(5, family)
        a.update(range(0, 50))
        b.update(range(30, 90))
        union.update(range(0, 90))
        a.merge(b)
        assert a.minima == union.minima
        assert a.argmin == union.argmin


class TestUpdateProbability:
    def test_empty_sketch_certain_update(self, family):
        sketch = KMinsSketch(3, family)
        assert sketch.update_probability() == 1.0

    def test_formula(self, family):
        sketch = KMinsSketch(3, family)
        sketch.update(range(40))
        expected = 1.0 - math.prod(1.0 - x for x in sketch.minima)
        assert sketch.update_probability() == pytest.approx(expected)

    def test_decreases_with_more_elements(self, family):
        sketch = KMinsSketch(4, family)
        sketch.update(range(10))
        early = sketch.update_probability()
        sketch.update(range(10, 1000))
        assert sketch.update_probability() < early


class TestCardinality:
    def test_mean_near_truth(self):
        n = 2000
        values = []
        for seed in range(60):
            sketch = KMinsSketch(16, HashFamily(seed))
            sketch.update(range(n))
            values.append(sketch.cardinality())
        assert statistics.mean(values) == pytest.approx(n, rel=0.1)

    def test_cv_near_analysis(self):
        # CV should be near 1/sqrt(k-2) (Section 4.1).
        n, k, runs = 5000, 25, 120
        values = []
        for seed in range(runs):
            sketch = KMinsSketch(k, HashFamily(1000 + seed))
            sketch.update(range(n))
            values.append(sketch.cardinality())
        cv = statistics.pstdev(values) / statistics.mean(values)
        assert cv == pytest.approx(1.0 / math.sqrt(k - 2), rel=0.45)
