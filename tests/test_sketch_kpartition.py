"""Tests for the k-partition MinHash sketch (full and rounded ranks)."""

import statistics

import pytest

from repro.errors import EstimatorError, ParameterError
from repro.rand.hashing import HashFamily
from repro.sketches import KPartitionSketch


class TestFullRanks:
    def test_tracks_bucket_minima(self, family):
        k = 8
        sketch = KPartitionSketch(k, family)
        sketch.update(range(200))
        for h in range(k):
            members = [i for i in range(200) if family.bucket(i, k) == h]
            if members:
                best = min(members, key=family.rank)
                assert sketch.argmin[h] == best
                assert sketch.minima[h] == family.rank(best)
            else:
                assert sketch.argmin[h] is None

    def test_nonempty_buckets(self, family):
        sketch = KPartitionSketch(16, family)
        assert sketch.nonempty_buckets() == 0
        sketch.add(1)
        assert sketch.nonempty_buckets() == 1
        sketch.update(range(500))
        assert sketch.nonempty_buckets() == 16

    def test_merge_equals_union(self, family):
        a = KPartitionSketch(6, family)
        b = KPartitionSketch(6, family)
        union = KPartitionSketch(6, family)
        a.update(range(0, 40))
        b.update(range(25, 80))
        union.update(range(0, 80))
        a.merge(b)
        assert a.minima == union.minima

    def test_update_probability_is_mean_threshold(self, family):
        sketch = KPartitionSketch(4, family)
        sketch.update(range(100))
        assert sketch.update_probability() == pytest.approx(
            sum(sketch.minima) / 4
        )

    def test_empty_sketch_probability_one(self, family):
        assert KPartitionSketch(4, family).update_probability() == 1.0


class TestRoundedRegisters:
    def test_register_consistency(self, family):
        sketch = KPartitionSketch(8, family, base=2.0, max_register=31)
        sketch.update(range(300))
        for h in range(8):
            if sketch.argmin[h] is not None:
                assert sketch.minima[h] == 2.0 ** (-sketch.registers[h])

    def test_saturation_blocks_updates(self, family):
        sketch = KPartitionSketch(2, family, base=2.0, max_register=1)
        sketch.update(range(100))
        assert sketch.saturated_buckets() == 2
        assert sketch.update_probability() == 0.0
        assert not any(sketch.add(i) for i in range(100, 200))

    def test_max_register_requires_base(self, family):
        with pytest.raises(ParameterError):
            KPartitionSketch(4, family, max_register=31)

    def test_merge_rejects_mixed_settings(self, family):
        a = KPartitionSketch(4, family, base=2.0, max_register=31)
        b = KPartitionSketch(4, family)
        with pytest.raises(EstimatorError):
            a.merge(b)

    def test_rounded_merge_union(self, family):
        a = KPartitionSketch(4, family, base=2.0, max_register=31)
        b = KPartitionSketch(4, family, base=2.0, max_register=31)
        union = KPartitionSketch(4, family, base=2.0, max_register=31)
        a.update(range(0, 30))
        b.update(range(20, 70))
        union.update(range(0, 70))
        a.merge(b)
        assert a.registers == union.registers


class TestCardinality:
    def test_mean_near_truth(self):
        n = 2000
        values = []
        for seed in range(60):
            sketch = KPartitionSketch(16, HashFamily(seed))
            sketch.update(range(n))
            values.append(sketch.cardinality())
        assert statistics.mean(values) == pytest.approx(n, rel=0.12)

    def test_small_sets_use_nonempty_count(self, family):
        sketch = KPartitionSketch(64, family)
        sketch.add("only")
        assert sketch.cardinality() == 1.0
