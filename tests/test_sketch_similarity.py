"""Tests for Jaccard / union estimation from coordinated sketches."""

import statistics

import pytest

from repro.errors import EstimatorError
from repro.rand.hashing import HashFamily
from repro.sketches import BottomKSketch, jaccard_estimate, union_size_estimate


def _pair(family, k, set_a, set_b):
    a = BottomKSketch(k, family)
    b = BottomKSketch(k, family)
    a.update(set_a)
    b.update(set_b)
    return a, b


class TestJaccard:
    def test_identical_sets(self, family):
        a, b = _pair(family, 8, range(100), range(100))
        assert jaccard_estimate(a, b) == 1.0

    def test_disjoint_sets(self, family):
        a, b = _pair(family, 8, range(100), range(100, 200))
        assert jaccard_estimate(a, b) == 0.0

    def test_empty_sketches(self, family):
        a, b = _pair(family, 8, [], [])
        assert jaccard_estimate(a, b) == 0.0

    def test_unbiased_over_seeds(self):
        # |A| = |B| = 150, |A & B| = 50 -> J = 50/250 = 0.2
        set_a = set(range(0, 150))
        set_b = set(range(100, 250))
        truth = 50 / 250
        values = []
        for seed in range(150):
            a, b = _pair(HashFamily(seed), 16, set_a, set_b)
            values.append(jaccard_estimate(a, b))
        assert statistics.mean(values) == pytest.approx(truth, abs=0.03)

    def test_requires_same_k(self, family):
        a = BottomKSketch(4, family)
        b = BottomKSketch(8, family)
        with pytest.raises(EstimatorError):
            jaccard_estimate(a, b)

    def test_requires_coordination(self, family):
        a = BottomKSketch(4, family)
        b = BottomKSketch(4, HashFamily(family.seed + 1))
        with pytest.raises(EstimatorError):
            jaccard_estimate(a, b)


class TestUnionSize:
    def test_small_union_exact(self, family):
        a, b = _pair(family, 16, range(5), range(3, 8))
        assert union_size_estimate(a, b) == 8.0

    def test_large_union_mean(self):
        set_a = range(0, 800)
        set_b = range(500, 1200)
        values = []
        for seed in range(80):
            a, b = _pair(HashFamily(seed), 24, set_a, set_b)
            values.append(union_size_estimate(a, b))
        assert statistics.mean(values) == pytest.approx(1200, rel=0.08)
