"""Statistical guarantees of the HIP estimators, asserted empirically.

The paper proves, not just suggests, the quality of HIP estimates:
Section 5 shows every adjusted weight is an unbiased presence estimate,
and Theorem 5.1 bounds the coefficient of variation of the cardinality
estimator by ``1/sqrt(2(k-1))``.  These tests run seeded multi-trial
simulations through the *public build path* (``AdsIndex.build``) on a
graph whose true neighborhood sizes are known exactly, and assert

* **unbiasedness** -- the trial mean is within 4 standard errors of the
  truth (the SE budget uses the CV bound itself, so the tolerance is a
  statistical one, not a tuned constant);
* **the CV bound** -- the empirical CV stays below the Theorem 5.1 bound
  with 25% slack for sampling noise of the sample CV (and above a loose
  floor, guarding against a degenerate estimator that collapses to a
  constant);
* **exactness within the first k** -- HIP weights of the first k scanned
  entries are exactly 1, so estimates of neighborhoods no larger than k
  must be exact, trial after trial.

Everything is seeded, so the suite is deterministic.  The whole module
carries the ``statistical`` marker: ``pytest -m statistical`` runs just
these, ``-m "not statistical"`` skips them.
"""

import math

import pytest

from repro.ads import AdsIndex
from repro.estimators.bounds import hip_cv_upper_bound
from repro.graph import star_graph
from repro.rand.hashing import HashFamily

pytestmark = pytest.mark.statistical

FLAVORS = ("bottomk", "kmins", "kpartition")
N = 150
TRIALS = 80
LEAF = 1  # any leaf of the star; all N nodes are within distance 2 of it
CV_SLACK = 1.25
CV_FLOOR = 0.3

# One CSR build input shared by every trial (the hash family varies).
GRAPH = star_graph(N).to_csr()


def _reachability_estimates(flavor: str, k: int, trials: int = TRIALS):
    """HIP estimates of the leaf's reachable-set size (truth: N), one
    independent hash family per trial."""
    estimates = []
    for trial in range(trials):
        index = AdsIndex.build(
            GRAPH, k, family=HashFamily(1009 * trial + 17), flavor=flavor
        )
        estimates.append(index.node_cardinality_at(LEAF, math.inf))
    return estimates


def _mean_and_cv(values):
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return mean, math.sqrt(variance) / mean


@pytest.mark.parametrize("flavor", FLAVORS)
def test_hip_cardinality_is_empirically_unbiased(flavor):
    estimates = _reachability_estimates(flavor, k=8)
    mean, _ = _mean_and_cv(estimates)
    # SE of the trial mean, taking the CV *bound* as the per-trial
    # relative sd (the true CV is below it, making the test stricter
    # than 4 actual standard errors).
    tolerance = 4.0 * hip_cv_upper_bound(8) * N / math.sqrt(TRIALS)
    assert abs(mean - N) <= tolerance


@pytest.mark.parametrize("flavor", FLAVORS)
def test_hip_cv_respects_theorem_5_1_bound(flavor):
    estimates = _reachability_estimates(flavor, k=8)
    _, cv = _mean_and_cv(estimates)
    bound = hip_cv_upper_bound(8)  # 1/sqrt(2(k-1))
    assert cv <= bound * CV_SLACK
    assert cv >= bound * CV_FLOOR  # not degenerate


def test_hip_cv_shrinks_with_k():
    """The 1/sqrt(2(k-1)) scaling is visible empirically: quadrupling
    2(k-1) roughly halves the error, and each k respects its bound."""
    cvs = {}
    for k in (4, 13):
        _, cv = _mean_and_cv(_reachability_estimates("bottomk", k=k))
        assert cv <= hip_cv_upper_bound(k) * CV_SLACK
        cvs[k] = cv
    # bound(13)/bound(4) = 1/2; allow generous sampling noise.
    assert cvs[13] <= cvs[4] * 0.75


def test_estimates_exact_when_neighborhood_fits_in_k():
    """n_1 of a leaf is 2 (itself plus the hub): bottom-k's tau is the
    k-th smallest *scanned* rank, which is 1 while fewer than k entries
    have been scanned (Lemma 5.1), so with k >= 2 both entries carry
    HIP weight exactly 1 and every trial must return exactly 2.0.
    (k-mins and k-partition condition on per-permutation / per-bucket
    minima instead, so their second entry is already probabilistic.)"""
    for trial in range(10):
        index = AdsIndex.build(GRAPH, 8, family=HashFamily(7919 * trial + 3))
        assert index.node_cardinality_at(LEAF, 1.0) == 2.0


def test_parallel_build_inherits_the_guarantees():
    """The sharded build is bit-identical to the serial one, so the
    statistical guarantees transfer; spot-check the estimates agree."""
    for trial in range(5):
        family = HashFamily(31 * trial + 5)
        serial = AdsIndex.build(GRAPH, 8, family=family)
        sharded = AdsIndex.build(GRAPH, 8, family=family, workers=1, shards=4)
        assert (
            sharded.node_cardinality_at(LEAF, math.inf)
            == serial.node_cardinality_at(LEAF, math.inf)
        )
