"""Tests for stream workload generators."""

from collections import Counter

from repro.streams import (
    distinct_stream,
    shuffled_distinct_stream,
    timestamped,
    zipf_stream,
)


class TestDistinctStream:
    def test_contents(self):
        assert list(distinct_stream(5)) == [0, 1, 2, 3, 4]
        assert list(distinct_stream(3, start=10)) == [10, 11, 12]

    def test_shuffled_is_permutation(self):
        stream = shuffled_distinct_stream(100, seed=3)
        assert sorted(stream) == list(range(100))

    def test_shuffled_seeded(self):
        assert shuffled_distinct_stream(50, seed=1) == shuffled_distinct_stream(
            50, seed=1
        )
        assert shuffled_distinct_stream(50, seed=1) != shuffled_distinct_stream(
            50, seed=2
        )


class TestZipfStream:
    def test_every_element_appears(self):
        stream = zipf_stream(50, 500, seed=4)
        assert set(stream) == set(range(50))

    def test_length(self):
        assert len(zipf_stream(10, 300, seed=0)) == 300
        assert len(zipf_stream(10, 7, seed=0)) == 7

    def test_head_is_heavier(self):
        stream = zipf_stream(100, 20_000, exponent=1.5, seed=1)
        counts = Counter(stream)
        head = sum(counts[i] for i in range(10))
        tail = sum(counts[i] for i in range(90, 100))
        assert head > 3 * tail


class TestTimestamped:
    def test_times(self):
        entries = list(timestamped([5, 6, 7], start=2.0, step=0.5))
        assert entries == [(5, 2.0), (6, 2.5), (7, 3.0)]
