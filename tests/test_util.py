"""Unit tests for repro._util helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro._util import (
    harmonic_number,
    is_sorted,
    kth_smallest,
    log_spaced_checkpoints,
)
from repro.errors import ParameterError


class TestHarmonicNumber:
    def test_base_cases(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(2) == pytest.approx(1.5)
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_asymptotic_branch_matches_exact_sum(self):
        # The implementation switches branches at 256; check continuity.
        for n in (255, 256, 257, 1000):
            exact = sum(1.0 / j for j in range(1, n + 1))
            assert harmonic_number(n) == pytest.approx(exact, rel=1e-12)

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            harmonic_number(-1)

    @given(st.integers(min_value=1, max_value=5000))
    def test_monotone_increasing(self, n):
        assert harmonic_number(n + 1) > harmonic_number(n)


class TestKthSmallest:
    def test_exact_positions(self):
        values = [0.5, 0.1, 0.9, 0.3]
        assert kth_smallest(values, 1) == 0.1
        assert kth_smallest(values, 2) == 0.3
        assert kth_smallest(values, 4) == 0.9

    def test_supremum_when_undersized(self):
        assert kth_smallest([0.2], 2) == 1.0
        assert kth_smallest([], 1, sup=math.inf) == math.inf

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            kth_smallest([0.1], 0)

    @given(st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=30),
           st.integers(min_value=1, max_value=10))
    def test_matches_sorted_reference(self, values, k):
        expected = sorted(values)[k - 1] if len(values) >= k else 1.0
        assert kth_smallest(values, k) == expected


class TestLogSpacedCheckpoints:
    def test_includes_endpoints(self):
        points = log_spaced_checkpoints(1000)
        assert points[0] == 1
        assert points[-1] == 1000

    def test_sorted_unique(self):
        points = log_spaced_checkpoints(50_000, per_decade=10)
        assert points == sorted(set(points))

    def test_single_point(self):
        assert log_spaced_checkpoints(1) == [1]

    def test_invalid(self):
        with pytest.raises(ParameterError):
            log_spaced_checkpoints(0)


class TestIsSorted:
    def test_cases(self):
        assert is_sorted([])
        assert is_sorted([1])
        assert is_sorted([1, 1, 2])
        assert not is_sorted([2, 1])
