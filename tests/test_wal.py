"""Durability: the write-ahead delta log and crash recovery.

The contract under test, end to end: an acknowledged ``POST /update``
survives a crash.  That decomposes into (1) the WAL file format --
append is fsync'd, framing is checksummed, any torn tail a mid-write
crash can leave is detected and cleanly ignored; (2) crash-atomic
index/manifest writes -- a crashed ``save`` never corrupts the
previous layout; (3) server replay -- a restarted worker re-applies
pending batches and answers *byte-identically* to a twin that never
crashed, on both wire codecs, including the torn-compact window where
the index flushed but the graph did not; (4) the real thing -- a
``python -m repro serve --wal-dir`` subprocess SIGKILL'd after
acknowledged updates recovers them on restart.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
import zlib
from pathlib import Path

import pytest

from repro.ads import AdsIndex
from repro.ads.wal import WalRecord, WriteAheadLog
from repro.errors import EstimatorError, ReproError
from repro.graph import write_edge_list
from repro.graph.csr import CSRGraph
from repro.serve import AdsServer, QueryClient


def _chain_graph(n):
    return CSRGraph.from_edges(
        [(i, i + 1) for i in range(n - 1)], nodes=range(n)
    )


BATCHES = [
    [(0, 9), (2, 7, 2.5)],
    [(1, 8)],
    [(3, 10), (10, 11), (4, 11, 0.5)],
]


class TestWalFormat:
    def test_append_assigns_consecutive_seqs(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        assert [wal.append(batch) for batch in BATCHES] == [1, 2, 3]
        assert wal.last_seq == 3
        assert wal.pending_records == 3

    def test_reopen_replays_everything_appended(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for batch in BATCHES:
            wal.append(batch)
        wal.close()
        reopened = WriteAheadLog(tmp_path)
        assert reopened.pending() == [
            WalRecord(seq, [tuple(edge) for edge in batch])
            for seq, batch in enumerate(BATCHES, start=1)
        ]
        assert reopened.last_seq == 3

    def test_reset_empties_log_and_advances_base(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        for batch in BATCHES:
            wal.append(batch)
        wal.reset(wal.last_seq)
        assert wal.pending() == []
        assert (wal.base_seq, wal.last_seq) == (3, 3)
        # The new base survives a reopen, and appends continue from it.
        wal.close()
        reopened = WriteAheadLog(tmp_path)
        assert (reopened.base_seq, reopened.last_seq) == (3, 3)
        assert reopened.append([(0, 1)]) == 4

    def test_rollback_last_withdraws_only_the_newest(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(BATCHES[0])
        wal.append(BATCHES[1])
        wal.rollback_last()
        assert wal.last_seq == 1
        # Idempotent: only the immediately preceding append rolls back.
        wal.rollback_last()
        assert wal.last_seq == 1
        wal.close()
        reopened = WriteAheadLog(tmp_path)
        assert [record.seq for record in reopened.pending()] == [1]
        assert reopened.append(BATCHES[1]) == 2

    def test_stats_reports_position(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(BATCHES[0])
        stats = wal.stats()
        assert stats["base_seq"] == 0
        assert stats["last_seq"] == 1
        assert stats["pending_records"] == 1
        assert Path(stats["path"]) == wal.path

    def test_not_a_wal_file_is_refused(self, tmp_path):
        (tmp_path / "updates.wal").write_bytes(b"definitely not a log")
        with pytest.raises(EstimatorError, match="not an ADS WAL"):
            WriteAheadLog(tmp_path)

    def test_torn_header_is_refused(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.close()
        raw = wal.path.read_bytes()
        wal.path.write_bytes(raw[: len(raw) - 3])
        with pytest.raises(EstimatorError, match="truncated WAL header"):
            WriteAheadLog(tmp_path)


def _corrupt_truncate(raw, boundary):
    return raw[: boundary + 5]  # mid-frame: header written, payload torn


def _corrupt_checksum(raw, boundary):
    return raw[:-1] + bytes([raw[-1] ^ 0xFF])  # last payload byte flipped


def _corrupt_payload(raw, boundary):
    # A frame whose checksum is valid but whose payload is not a
    # record: framing alone must not be trusted.
    payload = b'{"seq": "nope"}'
    frame = (
        len(payload).to_bytes(4, "little")
        + zlib.crc32(payload).to_bytes(4, "little")
        + payload
    )
    return raw[:boundary] + frame


def _corrupt_sequence(raw, boundary):
    payload = json.dumps({"seq": 99, "edges": [[0, 1]]}).encode()
    frame = (
        len(payload).to_bytes(4, "little")
        + zlib.crc32(payload).to_bytes(4, "little")
        + payload
    )
    return raw[:boundary] + frame


class TestTornTail:
    @pytest.fixture
    def logged(self, tmp_path):
        """Two good records, and the offset where the third would go."""
        wal = WriteAheadLog(tmp_path)
        wal.append(BATCHES[0])
        wal.append(BATCHES[1])
        boundary = wal.path.stat().st_size
        wal.append(BATCHES[2])
        wal.close()
        return wal.path, boundary

    @pytest.mark.parametrize(
        "corrupt",
        [_corrupt_truncate, _corrupt_checksum, _corrupt_payload,
         _corrupt_sequence],
        ids=["truncated-frame", "bad-crc", "bad-payload", "seq-gap"],
    )
    def test_torn_tail_keeps_the_good_prefix(self, logged, corrupt):
        path, boundary = logged
        path.write_bytes(corrupt(path.read_bytes(), boundary))
        reopened = WriteAheadLog(path.parent)
        # Records 1 and 2 survive; the torn third is ignored, never a
        # crash or a garbage record.
        assert [record.seq for record in reopened.pending()] == [1, 2]
        assert reopened.last_seq == 2

    @pytest.mark.parametrize(
        "corrupt",
        [_corrupt_truncate, _corrupt_checksum, _corrupt_payload,
         _corrupt_sequence],
        ids=["truncated-frame", "bad-crc", "bad-payload", "seq-gap"],
    )
    def test_append_after_tear_truncates_and_resyncs(self, logged, corrupt):
        path, boundary = logged
        path.write_bytes(corrupt(path.read_bytes(), boundary))
        reopened = WriteAheadLog(path.parent)
        assert reopened.append([(5, 6)]) == 3
        reopened.close()
        # The torn bytes are gone: a fresh scan sees three clean records.
        final = WriteAheadLog(path.parent)
        assert [record.seq for record in final.pending()] == [1, 2, 3]
        assert final.pending()[-1].edges == [(5, 6)]


class TestAtomicSave:
    def test_failed_save_leaves_previous_layout_intact(
        self, tmp_path, monkeypatch
    ):
        index = AdsIndex.build(_chain_graph(12), 4)
        path = tmp_path / "ix.adsidx"
        index.save(path)
        before = path.read_bytes()

        def explode(handle):
            handle.write(b"partial garbage")
            raise OSError("disk full")

        monkeypatch.setattr(index, "_write_single", explode)
        with pytest.raises(OSError, match="disk full"):
            index.save(path)
        # The target is byte-identical and no temp litter remains.
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["ix.adsidx"]

    def test_sharded_manifest_write_is_atomic(self, tmp_path, monkeypatch):
        index = AdsIndex.build(_chain_graph(12), 4)
        layout = tmp_path / "sharded"
        index.save(layout, shards=3)
        loaded = AdsIndex.load(layout)
        assert loaded.content_digest() == index.content_digest()
        # No temp files survive a successful save either.
        assert not [
            p for p in layout.iterdir() if p.name.startswith(".")
        ]

    def test_to_bytes_from_bytes_round_trip(self):
        index = AdsIndex.build(_chain_graph(12), 4)
        clone = AdsIndex.from_bytes(index.to_bytes())
        assert clone.content_digest() == index.content_digest()
        assert clone.nodes() == index.nodes()


def _answers(url, wire_mode):
    with QueryClient(url, wire_mode=wire_mode) as client:
        nodes = client.stats()["index"]["nodes"]
        return (
            client.cardinality_batch(list(range(nodes)), d=2.0),
            client.neighborhood()["series"],
            client.node(9),
        )


class TestServerRecovery:
    @pytest.fixture
    def seed(self, tmp_path):
        graph = _chain_graph(10)
        index = AdsIndex.build(graph, 4)
        path = tmp_path / "ix.adsidx"
        index.save(path)
        graph_path = tmp_path / "graph.txt"
        write_edge_list(graph, graph_path, all_nodes=True)
        return path, graph_path, graph

    def _server(self, seed, tmp_path, **kwargs):
        path, graph_path, graph = seed
        return AdsServer(
            AdsIndex.load(path),
            graph=CSRGraph.from_edges(
                list(graph.edges()), directed=graph.directed,
                nodes=graph.nodes(),
            ),
            index_path=path, graph_path=graph_path,
            wal_dir=tmp_path / "wal", **kwargs,
        )

    def test_wal_dir_requires_eager_index_and_graph(self, seed, tmp_path):
        path, graph_path, graph = seed
        with pytest.raises(ReproError, match="--wal-dir needs the index"):
            AdsServer(AdsIndex.load(path), wal_dir=tmp_path / "wal")
        with pytest.raises(ReproError, match="eagerly loaded"):
            AdsServer(
                AdsIndex.load(path, mmap=True), graph=graph,
                wal_dir=tmp_path / "wal",
            )

    def test_crashed_server_replays_to_byte_identity(self, seed, tmp_path):
        # The "crashed" server: takes acknowledged updates, never
        # compacts, and is abandoned without any shutdown courtesy.
        crashed = self._server(seed, tmp_path)
        crashed.start()
        with QueryClient(crashed.url) as client:
            for batch in BATCHES:
                client.update([list(edge) for edge in batch])
        crashed.shutdown()

        # Its twin never crashed: same seed, same batches, in memory.
        path, graph_path, graph = seed
        twin = AdsIndex.load(path)
        twin_graph = CSRGraph.from_edges(
            list(graph.edges()), directed=graph.directed,
            nodes=graph.nodes(),
        )
        for batch in BATCHES:
            twin.apply_edges(twin_graph, batch)

        recovered = self._server(seed, tmp_path)
        assert recovered.wal_replayed == len(BATCHES)
        assert recovered.index.content_digest() == twin.content_digest()

        # Byte-identity at the wire: both codecs answer exactly as a
        # server over the twin index does.
        twin_server = AdsServer(twin, graph=twin_graph)
        with recovered, twin_server:
            for wire_mode in ("json", "binary"):
                assert _answers(recovered.url, wire_mode) == _answers(
                    twin_server.url, wire_mode
                )

    def test_compact_truncates_the_log(self, seed, tmp_path):
        server = self._server(seed, tmp_path)
        with server:
            with QueryClient(server.url) as client:
                client.update([[0, 9]])
                assert server.wal.pending_records == 1
                info = client.compact()
                assert info["wal"]["pending_records"] == 0
        # Nothing to replay after a clean compact.
        fresh = self._server(seed, tmp_path)
        assert fresh.wal_replayed == 0
        fresh.wal.close()

    def test_refused_batch_is_rolled_back_not_replayed(
        self, seed, tmp_path
    ):
        server = self._server(seed, tmp_path)
        with server:
            with QueryClient(server.url) as client:
                client.update([[0, 9]])
                with pytest.raises(Exception):
                    # Mixed label types are refused by coercion inside
                    # apply_edges -- after the WAL append.
                    client.update([[0, 1.5]])
        recovered = self._server(seed, tmp_path)
        assert recovered.wal_replayed == 1
        recovered.wal.close()

    def test_torn_compact_graph_behind_index_is_reconciled(
        self, seed, tmp_path
    ):
        # Simulate compact crashing between its index flush and its
        # graph flush: apply batches (one adds node 10 -> 11 edges via
        # BATCHES[2]... chain graph has 10 nodes so use a new label),
        # flush ONLY the index, keep the stale graph file and the WAL.
        path, graph_path, graph = seed
        server = self._server(seed, tmp_path)
        server.start()
        with QueryClient(server.url) as client:
            client.update([[0, 9], [3, 42]])  # 42 is a brand-new node
        server.index.save(path)  # compact step 1 only: index flushed
        server.shutdown()

        recovered = self._server(seed, tmp_path)
        # The stale graph was caught up edge-by-edge and the pair
        # realigned; queries see the new node.
        assert recovered.wal_replayed == 1
        assert recovered.graph.nodes() == recovered.index.nodes()
        assert 42 in recovered.index.nodes()
        recovered.wal.close()

    def test_stats_surface_the_wal(self, seed, tmp_path):
        server = self._server(seed, tmp_path)
        with server:
            with QueryClient(server.url) as client:
                client.update([[0, 9]])
                stats = client.stats()
        wal = stats["updates"]["wal"]
        assert wal["enabled"] is True
        assert wal["pending_records"] == 1
        assert wal["replayed_on_start"] == 0
        assert stats["index"]["labels_digest"]


def _free_port():
    with socket.create_server(("127.0.0.1", 0)) as listener:
        return listener.getsockname()[1]


_URL_RE = re.compile(r"on (http://127\.0\.0\.1:\d+) with")


def _spawn_serve(tmp_path, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parents[1] / "src"
    ) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--index", str(tmp_path / "ix.adsidx"),
            "--graph", str(tmp_path / "graph.txt"),
            "--no-mmap", "--port", "0", "--threads", "2",
            "--wal-dir", str(tmp_path / "wal"), *extra,
        ],
        env=env, stderr=subprocess.PIPE, text=True,
    )
    banner = process.stderr.readline()
    match = _URL_RE.search(banner)
    if match is None:
        process.kill()
        raise AssertionError(f"no serve banner: {banner!r}")
    url = match.group(1)
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        try:
            with QueryClient(url, timeout=1.0) as client:
                client.healthz()
            return process, url, banner
        except Exception:
            time.sleep(0.05)
    process.kill()
    raise AssertionError("serve subprocess never became healthy")


@pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs POSIX SIGKILL"
)
class TestSubprocessCrash:
    def test_sigkilled_worker_recovers_acknowledged_updates(
        self, tmp_path
    ):
        graph = _chain_graph(10)
        index = AdsIndex.build(graph, 4)
        index.save(tmp_path / "ix.adsidx")
        write_edge_list(graph, tmp_path / "graph.txt", all_nodes=True)

        # The twin applies the same batches without ever crashing.
        twin = AdsIndex.build(_chain_graph(10), 4)
        twin_graph = _chain_graph(10)
        for batch in BATCHES:
            twin.apply_edges(twin_graph, batch)

        process, url, _ = _spawn_serve(tmp_path)
        try:
            with QueryClient(url) as client:
                for batch in BATCHES:
                    result = client.update(
                        [list(edge) for edge in batch]
                    )
                    assert result["applied_arcs"] >= 1
                before = _answers(url, "json")
        finally:
            # SIGKILL: no atexit, no flush, no shutdown hook runs.
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)
        process.stderr.close()

        process, url, banner = _spawn_serve(tmp_path)
        try:
            assert f"replayed {len(BATCHES)} batches" in banner
            after = _answers(url, "json")
            assert after == before
            assert after == _serve_twin_answers(twin, twin_graph)
            with QueryClient(url) as client:
                stats = client.stats()
            assert (
                stats["updates"]["wal"]["replayed_on_start"]
                == len(BATCHES)
            )
        finally:
            process.kill()
            process.wait(timeout=10)
            process.stderr.close()


def _serve_twin_answers(twin, twin_graph):
    server = AdsServer(twin, graph=twin_graph)
    with server:
        return _answers(server.url, "json")
